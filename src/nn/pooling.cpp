#include "nn/pooling.hpp"

#include <limits>

#include "nn/kernels.hpp"

namespace ff::nn {

namespace {

// Pooling planes are independent; fan (n, c) pairs across the pool under
// the shared dispatch policy (same helper as conv/depthwise).
using kernels::ForEachPlane;

}  // namespace

MaxPool2D::MaxPool2D(std::string name, std::int64_t k, std::int64_t stride)
    : Layer(std::move(name)), k_(k), stride_(stride) {
  FF_CHECK_GT(k, 0);
  FF_CHECK_GT(stride, 0);
}

Shape MaxPool2D::OutputShape(const Shape& in) const {
  FF_CHECK_MSG(in.h >= k_ && in.w >= k_,
               name() << ": input " << in << " smaller than window " << k_);
  return Shape{in.n, in.c, (in.h - k_) / stride_ + 1, (in.w - k_) / stride_ + 1};
}

Tensor MaxPool2D::Forward(const TensorView& in) {
  const Shape out_shape = OutputShape(in.shape());
  Tensor out(out_shape);
  if (training_) {
    // argmax_ stores flat dense-plane indices; training inputs are always
    // owning (dense) tensors, never cropped views.
    FF_CHECK_MSG(in.plane_contiguous(),
                 name() << ": training forward needs dense input planes");
    argmax_.assign(static_cast<std::size_t>(out_shape.elements()), 0);
    saved_in_shape_ = in.shape();
  }
  const std::int64_t is = in.row_stride();
  const std::int64_t plane = out_shape.h * out_shape.w;
  ForEachPlane(
      in.shape().n, in.shape().c,
      in.shape().n * in.shape().c * plane * k_ * k_,
      [&](std::int64_t n, std::int64_t c) {
        const float* ip = in.plane(n, c);
        float* op = out.plane(n, c);
        std::int64_t oi = (n * in.shape().c + c) * plane;
        for (std::int64_t oy = 0; oy < out_shape.h; ++oy) {
          for (std::int64_t ox = 0; ox < out_shape.w; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            std::int64_t best_idx = 0;
            for (std::int64_t ky = 0; ky < k_; ++ky) {
              for (std::int64_t kx = 0; kx < k_; ++kx) {
                const std::int64_t idx =
                    (oy * stride_ + ky) * is + ox * stride_ + kx;
                if (ip[idx] > best) {
                  best = ip[idx];
                  best_idx = idx;
                }
              }
            }
            op[oy * out_shape.w + ox] = best;
            if (training_) argmax_[static_cast<std::size_t>(oi)] = best_idx;
            ++oi;
          }
        }
      });
  return out;
}

Tensor MaxPool2D::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!argmax_.empty(),
               name() << ": Backward without a training-mode Forward");
  const Shape out_shape = OutputShape(saved_in_shape_);
  FF_CHECK(grad_out.shape() == out_shape);
  Tensor grad_in(saved_in_shape_);
  std::int64_t oi = 0;
  for (std::int64_t n = 0; n < saved_in_shape_.n; ++n) {
    for (std::int64_t c = 0; c < saved_in_shape_.c; ++c) {
      float* dip = grad_in.plane(n, c);
      const float* gp = grad_out.plane(n, c);
      for (std::int64_t p = 0; p < out_shape.plane(); ++p) {
        dip[argmax_[static_cast<std::size_t>(oi)]] += gp[p];
        ++oi;
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::Forward(const TensorView& in) {
  Tensor out(OutputShape(in.shape()));
  const std::int64_t h = in.shape().h, w = in.shape().w;
  ForEachPlane(in.shape().n, in.shape().c,
               in.shape().n * in.shape().c * h * w,
               [&](std::int64_t n, std::int64_t c) {
                 double acc = 0;
                 for (std::int64_t y = 0; y < h; ++y) {
                   const float* row = in.row(n, c, y);
                   for (std::int64_t x = 0; x < w; ++x) acc += row[x];
                 }
                 *out.plane(n, c) =
                     static_cast<float>(acc / static_cast<double>(h * w));
               });
  if (training_) saved_in_shape_ = in.shape();
  return out;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(saved_in_shape_.elements() > 0,
               name() << ": Backward without a training-mode Forward");
  FF_CHECK(grad_out.shape() == OutputShape(saved_in_shape_));
  Tensor grad_in(saved_in_shape_);
  const std::int64_t plane = saved_in_shape_.plane();
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t n = 0; n < saved_in_shape_.n; ++n) {
    for (std::int64_t c = 0; c < saved_in_shape_.c; ++c) {
      const float g = *grad_out.plane(n, c) * inv;
      float* dip = grad_in.plane(n, c);
      for (std::int64_t p = 0; p < plane; ++p) dip[p] = g;
    }
  }
  return grad_in;
}

Tensor GlobalMaxPool::Forward(const TensorView& in) {
  Tensor out(OutputShape(in.shape()));
  const std::int64_t h = in.shape().h, w = in.shape().w;
  if (training_) {
    FF_CHECK_MSG(in.plane_contiguous(),
                 name() << ": training forward needs dense input planes");
    argmax_.assign(
        static_cast<std::size_t>(in.shape().n * in.shape().c), 0);
    saved_in_shape_ = in.shape();
  }
  ForEachPlane(in.shape().n, in.shape().c,
               in.shape().n * in.shape().c * h * w,
               [&](std::int64_t n, std::int64_t c) {
                 float best = *in.row(n, c, 0);
                 std::int64_t best_idx = 0;
                 for (std::int64_t y = 0; y < h; ++y) {
                   const float* row = in.row(n, c, y);
                   for (std::int64_t x = 0; x < w; ++x) {
                     if (row[x] > best) {
                       best = row[x];
                       best_idx = y * w + x;  // dense-plane index for Backward
                     }
                   }
                 }
                 *out.plane(n, c) = best;
                 if (training_) {
                   argmax_[static_cast<std::size_t>(n * in.shape().c + c)] =
                       best_idx;
                 }
               });
  return out;
}

Tensor GlobalMaxPool::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!argmax_.empty(),
               name() << ": Backward without a training-mode Forward");
  FF_CHECK(grad_out.shape() == OutputShape(saved_in_shape_));
  Tensor grad_in(saved_in_shape_);
  for (std::int64_t n = 0; n < saved_in_shape_.n; ++n) {
    for (std::int64_t c = 0; c < saved_in_shape_.c; ++c) {
      grad_in.plane(n, c)[argmax_[static_cast<std::size_t>(
          n * saved_in_shape_.c + c)]] = *grad_out.plane(n, c);
    }
  }
  return grad_in;
}

}  // namespace ff::nn
