// Fully-connected layer over flattened NCHW input.
#pragma once

#include "nn/layer.hpp"

namespace ff::nn {

// Treats each batch image as a flat vector of in_dim floats and produces
// `units` outputs, shaped (n, units, 1, 1). Weight layout [units][in_dim].
class FullyConnected : public Layer {
 public:
  FullyConnected(std::string name, std::int64_t in_dim, std::int64_t units);

  Shape OutputShape(const Shape& in) const override;
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<ParamView> Params() override;
  std::uint64_t Macs(const Shape& in) const override;

  std::int64_t in_dim() const { return in_dim_; }
  std::int64_t units() const { return units_; }

  std::vector<float>& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  std::int64_t in_dim_, units_;
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor saved_in_;
};

}  // namespace ff::nn
