// WindowPack: reinterprets a batch of W consecutive per-frame maps as one
// depthwise-concatenated window (paper Fig. 2c's "Concat").
//
// In NCHW layout, a (W*k, C, H, Wd) tensor and a (k, W*C, H, Wd) tensor have
// byte-identical storage when window members are batch-adjacent, so both
// Forward and Backward are free reshapes. This lets the whole windowed
// microclassifier train as a single Sequential.
#pragma once

#include "nn/layer.hpp"

namespace ff::nn {

class WindowPack : public Layer {
 public:
  WindowPack(std::string name, std::int64_t window)
      : Layer(std::move(name)), window_(window) {
    FF_CHECK_GT(window, 0);
  }

  Shape OutputShape(const Shape& in) const override {
    FF_CHECK_MSG(in.n % window_ == 0,
                 name() << ": batch " << in.n << " not a multiple of window "
                        << window_);
    return Shape{in.n / window_, in.c * window_, in.h, in.w};
  }

  Tensor Forward(const TensorView& in) override {
    if (training_) saved_in_shape_ = in.shape();
    // One dense copy either way: reshaping a view materializes it, exactly
    // like Tensor::Reshaped's copied storage.
    return in.Materialize(OutputShape(in.shape()));
  }

  Tensor Backward(const Tensor& grad_out) override {
    FF_CHECK(grad_out.shape() == OutputShape(saved_in_shape_));
    return grad_out.Reshaped(saved_in_shape_);
  }

  std::uint64_t Macs(const Shape&) const override { return 0; }

  std::int64_t window() const { return window_; }

 private:
  std::int64_t window_;
  Shape saved_in_shape_;
};

}  // namespace ff::nn
