#include "nn/dense.hpp"

#include "nn/kernels.hpp"
#include "util/thread_pool.hpp"

namespace ff::nn {

FullyConnected::FullyConnected(std::string name, std::int64_t in_dim,
                               std::int64_t units)
    : Layer(std::move(name)),
      in_dim_(in_dim),
      units_(units),
      w_(static_cast<std::size_t>(in_dim * units), 0.0f),
      b_(static_cast<std::size_t>(units), 0.0f),
      dw_(w_.size(), 0.0f),
      db_(b_.size(), 0.0f) {
  FF_CHECK_GT(in_dim, 0);
  FF_CHECK_GT(units, 0);
}

Shape FullyConnected::OutputShape(const Shape& in) const {
  FF_CHECK_MSG(in.per_image() == in_dim_,
               name() << ": expected flat dim " << in_dim_ << ", got "
                      << in.per_image() << " from " << in);
  return Shape{in.n, units_, 1, 1};
}

Tensor FullyConnected::Forward(const TensorView& in) {
  const Shape out_shape = OutputShape(in.shape());
  Tensor out(out_shape);
  // The dot products need each image as one dense run; views arriving here
  // are virtually always dense already (FCs follow materializing layers).
  Tensor staged;
  if (!in.contiguous()) staged = in.Materialize();
  const float* flat = in.contiguous() ? in.data() : staged.data();
  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    const float* x = flat + n * in.shape().per_image();
    float* y = out.plane(n, 0);
    auto compute_units = [&](std::int64_t u0, std::int64_t u1) {
      for (std::int64_t u = u0; u < u1; ++u) {
        const float* wrow = &w_[static_cast<std::size_t>(u * in_dim_)];
        y[u] = static_cast<float>(b_[static_cast<std::size_t>(u)] +
                                  kernels::Dot(wrow, x, in_dim_));
      }
    };
    // The MC heads are tiny (200x1); dispatching those to the pool costs
    // more than the dot products themselves.
    if (kernels::WorthParallel(2 * units_ * in_dim_)) {
      util::GlobalPool().ParallelForRange(
          static_cast<std::size_t>(units_), [&](std::size_t b, std::size_t e) {
            compute_units(static_cast<std::int64_t>(b),
                          static_cast<std::int64_t>(e));
          });
    } else {
      compute_units(0, units_);
    }
  }
  if (training_) saved_in_ = in.contiguous() ? in.Materialize()
                                             : std::move(staged);
  return out;
}

Tensor FullyConnected::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!saved_in_.empty(),
               name() << ": Backward without a training-mode Forward");
  const Tensor& in = saved_in_;
  FF_CHECK(grad_out.shape() == OutputShape(in.shape()));
  Tensor grad_in(in.shape());
  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    const float* x = in.plane(n, 0);
    const float* g = grad_out.plane(n, 0);
    float* dx = grad_in.plane(n, 0);
    for (std::int64_t u = 0; u < units_; ++u) {
      const float gu = g[u];
      db_[static_cast<std::size_t>(u)] += gu;
      float* dwrow = &dw_[static_cast<std::size_t>(u * in_dim_)];
      const float* wrow = &w_[static_cast<std::size_t>(u * in_dim_)];
      for (std::int64_t i = 0; i < in_dim_; ++i) {
        dwrow[i] += gu * x[i];
        dx[i] += gu * wrow[i];
      }
    }
  }
  return grad_in;
}

std::vector<ParamView> FullyConnected::Params() {
  return {{name() + "/weight", &w_, &dw_}, {name() + "/bias", &b_, &db_}};
}

std::uint64_t FullyConnected::Macs(const Shape& in) const {
  // Paper §4.5: N * H * W * M == units * flattened input size.
  return static_cast<std::uint64_t>(units_) *
         static_cast<std::uint64_t>(in.per_image());
}

}  // namespace ff::nn
