#include "nn/init.hpp"

#include <cmath>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "util/rng.hpp"

namespace ff::nn {

namespace {

// fan_in for a parameter blob: inferred from the owning layer's type.
std::int64_t FanIn(const Layer& layer) {
  if (const auto* c = dynamic_cast<const Conv2D*>(&layer)) {
    return c->in_channels() * c->kernel() * c->kernel();
  }
  if (const auto* d = dynamic_cast<const DepthwiseConv2D*>(&layer)) {
    return d->kernel() * d->kernel();  // one spatial filter per channel
  }
  if (const auto* f = dynamic_cast<const FullyConnected*>(&layer)) {
    return f->in_dim();
  }
  return 1;
}

void InitLayerParams(Layer& layer, std::uint64_t seed) {
  const std::int64_t fan_in = FanIn(layer);
  for (auto& p : layer.Params()) {
    util::Pcg32 rng(seed ^ util::HashString(p.name));
    const bool is_bias = p.name.size() >= 5 &&
                         p.name.compare(p.name.size() - 5, 5, "/bias") == 0;
    if (is_bias) {
      std::fill(p.value->begin(), p.value->end(), 0.0f);
    } else {
      const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
      for (auto& v : *p.value) {
        v = static_cast<float>(rng.Normal(0.0, stddev));
      }
    }
  }
}

}  // namespace

void HeInit(Sequential& net, std::uint64_t seed) {
  for (std::size_t i = 0; i < net.n_layers(); ++i) {
    InitLayerParams(net.layer(i), seed);
  }
}

void HeInitLayer(Layer& layer, std::uint64_t seed) {
  InitLayerParams(layer, seed);
}

}  // namespace ff::nn
