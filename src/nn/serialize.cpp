#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace ff::nn {

namespace {

constexpr char kMagic[4] = {'F', 'F', 'N', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FF_CHECK_MSG(is.good(), "truncated weight stream");
  return v;
}

}  // namespace

std::string SerializeWeights(Sequential& net) {
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, 4);
  WritePod(os, kVersion);
  const auto params = net.Params();
  WritePod(os, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    WritePod(os, static_cast<std::uint32_t>(p.name.size()));
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    WritePod(os, static_cast<std::uint64_t>(p.value->size()));
    os.write(reinterpret_cast<const char*>(p.value->data()),
             static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
  return os.str();
}

void DeserializeWeights(Sequential& net, const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  char magic[4];
  is.read(magic, 4);
  FF_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
               "bad weight file magic");
  const auto version = ReadPod<std::uint32_t>(is);
  FF_CHECK_EQ(version, kVersion);
  const auto count = ReadPod<std::uint32_t>(is);
  auto params = net.Params();
  FF_CHECK_MSG(count == params.size(),
               net.name() << ": file has " << count << " blobs, net has "
                          << params.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = ReadPod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto n_floats = ReadPod<std::uint64_t>(is);
    FF_CHECK_MSG(name == params[i].name,
                 "blob " << i << ": file has '" << name << "', net has '"
                         << params[i].name << "'");
    FF_CHECK_MSG(n_floats == params[i].value->size(),
                 name << ": file has " << n_floats << " floats, net expects "
                      << params[i].value->size());
    is.read(reinterpret_cast<char*>(params[i].value->data()),
            static_cast<std::streamsize>(n_floats * sizeof(float)));
    FF_CHECK_MSG(is.good(), "truncated weight stream in blob " << name);
  }
}

void SaveWeights(Sequential& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FF_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const std::string bytes = SerializeWeights(net);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FF_CHECK_MSG(out.good(), "short write to " << path);
}

void LoadWeights(Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FF_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  DeserializeWeights(net, ss.str());
}

}  // namespace ff::nn
