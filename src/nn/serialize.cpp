#include "nn/serialize.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ff::nn {

namespace {

constexpr char kMagic[4] = {'F', 'F', 'N', 'W'};
constexpr std::uint32_t kVersion = 1;
constexpr char kQuantMagic[4] = {'F', 'F', 'N', 'Q'};
constexpr std::uint32_t kQuantVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FF_CHECK_MSG(is.good(), "truncated weight stream");
  return v;
}

}  // namespace

std::string SerializeWeights(Sequential& net) {
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, 4);
  WritePod(os, kVersion);
  const auto params = net.Params();
  WritePod(os, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    WritePod(os, static_cast<std::uint32_t>(p.name.size()));
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    WritePod(os, static_cast<std::uint64_t>(p.value->size()));
    os.write(reinterpret_cast<const char*>(p.value->data()),
             static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
  return os.str();
}

void DeserializeWeights(Sequential& net, const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  char magic[4];
  is.read(magic, 4);
  FF_CHECK_MSG(!(is.good() && std::memcmp(magic, kQuantMagic, 4) == 0),
               net.name()
                   << ": checkpoint is QUANTIZED (FFNQ) but a float load was "
                      "requested — use DeserializeQuantized / configure the "
                      "extractor with quantize=true");
  FF_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
               "bad weight file magic");
  const auto version = ReadPod<std::uint32_t>(is);
  FF_CHECK_EQ(version, kVersion);
  const auto count = ReadPod<std::uint32_t>(is);
  auto params = net.Params();
  FF_CHECK_MSG(count == params.size(),
               net.name() << ": file has " << count << " blobs, net has "
                          << params.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = ReadPod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto n_floats = ReadPod<std::uint64_t>(is);
    FF_CHECK_MSG(name == params[i].name,
                 "blob " << i << ": file has '" << name << "', net has '"
                         << params[i].name << "'");
    FF_CHECK_MSG(n_floats == params[i].value->size(),
                 name << ": file has " << n_floats << " floats, net expects "
                      << params[i].value->size());
    is.read(reinterpret_cast<char*>(params[i].value->data()),
            static_cast<std::streamsize>(n_floats * sizeof(float)));
    FF_CHECK_MSG(is.good(), "truncated weight stream in blob " << name);
  }
}

CheckpointKind SniffCheckpoint(const std::string& bytes) {
  if (bytes.size() < 4) return CheckpointKind::kUnknown;
  if (std::memcmp(bytes.data(), kMagic, 4) == 0) return CheckpointKind::kFloat;
  if (std::memcmp(bytes.data(), kQuantMagic, 4) == 0) {
    return CheckpointKind::kQuantized;
  }
  return CheckpointKind::kUnknown;
}

std::string SerializeQuantized(const QuantizedProgram& prog) {
  std::ostringstream os(std::ios::binary);
  os.write(kQuantMagic, 4);
  WritePod(os, kQuantVersion);
  WritePod(os, prog.input_quant().scale);
  WritePod(os, prog.input_quant().zero_point);
  WritePod(os, static_cast<std::uint32_t>(prog.n_ops()));
  for (std::size_t i = 0; i < prog.n_ops(); ++i) {
    const QuantOp& op = prog.op(i);
    WritePod(os, static_cast<std::uint32_t>(op.name.size()));
    os.write(op.name.data(), static_cast<std::streamsize>(op.name.size()));
    WritePod(os, static_cast<std::uint8_t>(op.kind));
    WritePod(os, op.out_q.scale);
    WritePod(os, op.out_q.zero_point);
    WritePod(os, static_cast<std::uint64_t>(op.w.size()));
    os.write(reinterpret_cast<const char*>(op.w.data()),
             static_cast<std::streamsize>(op.w.size()));
    WritePod(os, static_cast<std::uint64_t>(op.out_c));
    os.write(reinterpret_cast<const char*>(op.rscale.data()),
             static_cast<std::streamsize>(op.rscale.size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(op.rbias.data()),
             static_cast<std::streamsize>(op.rbias.size() * sizeof(float)));
  }
  return os.str();
}

QuantizedProgram DeserializeQuantized(Sequential& net,
                                      const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  char magic[4];
  is.read(magic, 4);
  FF_CHECK_MSG(!(is.good() && std::memcmp(magic, kMagic, 4) == 0),
               net.name()
                   << ": checkpoint is FLOAT (FFNW) but a quantized load was "
                      "requested — use DeserializeWeights / configure the "
                      "extractor with quantize=false");
  FF_CHECK_MSG(is.good() && std::memcmp(magic, kQuantMagic, 4) == 0,
               "bad quantized weight file magic");
  const auto version = ReadPod<std::uint32_t>(is);
  FF_CHECK_EQ(version, kQuantVersion);

  // Everything below is untrusted; the plan derived from the caller's net is
  // the source of truth for names, kinds, and sizes.
  QuantizedProgram prog = Quantizer::Plan(net);
  prog.in_q_.scale = ReadPod<float>(is);
  prog.in_q_.zero_point = ReadPod<std::int32_t>(is);
  FF_CHECK_MSG(std::isfinite(prog.in_q_.scale) && prog.in_q_.scale > 0.0f,
               "quantized checkpoint: bad input scale");
  const auto count = ReadPod<std::uint32_t>(is);
  FF_CHECK_MSG(count == prog.n_ops(),
               net.name() << ": file has " << count << " quantized ops, plan "
                          << "has " << prog.n_ops());
  for (std::uint32_t i = 0; i < count; ++i) {
    QuantOp& op = prog.ops_[i];
    const auto name_len = ReadPod<std::uint32_t>(is);
    FF_CHECK_MSG(name_len <= 4096, "quantized checkpoint: absurd name length");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    FF_CHECK_MSG(is.good(), "truncated quantized weight stream");
    FF_CHECK_MSG(name == op.name, "op " << i << ": file has '" << name
                                        << "', plan has '" << op.name << "'");
    const auto kind = ReadPod<std::uint8_t>(is);
    FF_CHECK_MSG(kind == static_cast<std::uint8_t>(op.kind),
                 op.name << ": op kind mismatch");
    op.out_q.scale = ReadPod<float>(is);
    op.out_q.zero_point = ReadPod<std::int32_t>(is);
    FF_CHECK_MSG(std::isfinite(op.out_q.scale) && op.out_q.scale > 0.0f,
                 op.name << ": bad output scale");
    FF_CHECK_MSG(op.out_q.zero_point == 0 || op.out_q.zero_point == 128,
                 op.name << ": bad output zero point");
    const auto n_w = ReadPod<std::uint64_t>(is);
    FF_CHECK_MSG(n_w == op.w.size(), op.name << ": file has " << n_w
                                             << " weights, plan expects "
                                             << op.w.size());
    is.read(reinterpret_cast<char*>(op.w.data()),
            static_cast<std::streamsize>(op.w.size()));
    const auto n_oc = ReadPod<std::uint64_t>(is);
    FF_CHECK_MSG(n_oc == static_cast<std::uint64_t>(op.out_c),
                 op.name << ": file has " << n_oc << " channels, plan expects "
                         << op.out_c);
    is.read(reinterpret_cast<char*>(op.rscale.data()),
            static_cast<std::streamsize>(op.rscale.size() * sizeof(float)));
    is.read(reinterpret_cast<char*>(op.rbias.data()),
            static_cast<std::streamsize>(op.rbias.size() * sizeof(float)));
    FF_CHECK_MSG(is.good(), "truncated quantized weight stream in " << op.name);
    for (std::size_t c = 0; c < op.rscale.size(); ++c) {
      FF_CHECK_MSG(std::isfinite(op.rscale[c]) && std::isfinite(op.rbias[c]),
                   op.name << ": non-finite requant parameters");
    }
  }
  return prog;
}

void SaveWeights(Sequential& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FF_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const std::string bytes = SerializeWeights(net);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FF_CHECK_MSG(out.good(), "short write to " << path);
}

void LoadWeights(Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FF_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  DeserializeWeights(net, ss.str());
}

}  // namespace ff::nn
