#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/kernels.hpp"
#include "util/check.hpp"

namespace ff::nn {

namespace {

// Dense u8 NCHW activation buffer — the int8 twin of Tensor.
struct QTensor {
  Shape shape{0, 0, 0, 0};
  std::vector<std::uint8_t> data;

  explicit QTensor(const Shape& s)
      : shape(s), data(static_cast<std::size_t>(s.elements())) {}

  std::int64_t plane_size() const { return shape.h * shape.w; }
  std::uint8_t* plane(std::int64_t n, std::int64_t c) {
    return data.data() + (n * shape.c + c) * plane_size();
  }
  const std::uint8_t* plane(std::int64_t n, std::int64_t c) const {
    return data.data() + (n * shape.c + c) * plane_size();
  }
};

ActQuant ActQuantFromStats(float absmax, float min) {
  ActQuant q;
  const bool is_signed = min < 0.0f;
  q.zero_point = is_signed ? 128 : 0;
  if (absmax <= 0.0f || !std::isfinite(absmax)) {
    q.scale = 1.0f;
  } else {
    q.scale = is_signed ? absmax / 127.0f : absmax / 255.0f;
  }
  return q;
}

QTensor QuantizeInput(const TensorView& in, const ActQuant& q) {
  QTensor out(in.shape());
  const float inv = 1.0f / q.scale;
  const auto zp = static_cast<float>(q.zero_point);
  const std::int64_t h = in.shape().h, w = in.shape().w;
  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    for (std::int64_t c = 0; c < in.shape().c; ++c) {
      std::uint8_t* op = out.plane(n, c);
      if (in.plane_contiguous()) {
        kernels::QQuant(in.plane(n, c), inv, zp, op, h * w);
      } else {
        for (std::int64_t y = 0; y < h; ++y) {
          kernels::QQuant(in.row(n, c, y), inv, zp, op + y * w, w);
        }
      }
    }
  }
  return out;
}

Tensor Dequantize(const QTensor& in, const ActQuant& q) {
  Tensor out(in.shape);
  kernels::QDequant(in.data.data(), q.scale, q.zero_point, out.data(),
                    in.shape.elements());
  return out;
}

// Copies the input planes of image `n` into a zero-point-padded buffer of
// `ph` x `pw` per channel, so KxK taps never special-case borders: a padded
// byte equal to zp is exactly the u8 encoding of float 0. The padded extent
// may also crop the input (floor-mode geometry discards edge rows/cols).
void PadImage(const QTensor& in, std::int64_t n, std::int64_t zp,
              std::int64_t ph, std::int64_t pw, std::int64_t pad_y,
              std::int64_t pad_x, std::vector<std::uint8_t>& padded) {
  const std::int64_t ih = in.shape.h, iw = in.shape.w;
  // +32 slack bytes: the stride-2 SIMD taps load whole 2n-byte spans whose
  // final odd byte can sit one past the last row (the value is discarded).
  padded.assign(static_cast<std::size_t>(in.shape.c * ph * pw + 32),
                static_cast<std::uint8_t>(zp));
  const std::int64_t copy_w = std::min(iw, pw - pad_x);
  for (std::int64_t c = 0; c < in.shape.c; ++c) {
    const std::uint8_t* ip = in.plane(n, c);
    std::uint8_t* pp = padded.data() + c * ph * pw;
    for (std::int64_t y = 0; y < ph; ++y) {
      const std::int64_t sy = y - pad_y;
      if (sy < 0 || sy >= ih) continue;
      std::memcpy(pp + y * pw + pad_x, ip + sy * iw,
                  static_cast<std::size_t>(copy_w));
    }
  }
}

// Accumulates one KxK weight tap over the padded plane; stride 1 runs
// through the fused-rows kernel, larger strides fall back to an exact
// scalar loop (integer adds are order-free, so this stays bitwise-stable).
void AccumulateTap(std::int32_t w, const std::uint8_t* pplane,
                   std::int64_t pw, std::int64_t ky, std::int64_t kx,
                   std::int64_t stride, std::int32_t* acc, std::int64_t oh,
                   std::int64_t ow) {
  if (w == 0) return;
  const std::uint8_t* base = pplane + ky * pw + kx;
  if (stride == 1) {
    kernels::QAxpyRows(w, base, pw, acc, ow, oh, ow);
    return;
  }
  if (stride == 2) {
    kernels::QAxpyRowsS2(w, base, 2 * pw, acc, ow, oh, ow);
    return;
  }
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::uint8_t* xrow = base + oy * stride * pw;
    std::int32_t* arow = acc + oy * ow;
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      arow[ox] += w * xrow[ox * stride];
    }
  }
}

Shape OpOutputShape(const QuantOp& op, const Shape& in) {
  switch (op.kind) {
    case QuantOp::Kind::kDense:
      FF_CHECK_EQ(in.c * in.h * in.w, op.in_c);
      return Shape{in.n, op.out_c, 1, 1};
    case QuantOp::Kind::kConv:
    case QuantOp::Kind::kDepthwise: {
      FF_CHECK_EQ(in.c, op.in_c);
      const AxisGeometry gy = ComputeAxisGeometry(in.h, op.k, op.stride,
                                                  op.pad);
      const AxisGeometry gx = ComputeAxisGeometry(in.w, op.k, op.stride,
                                                  op.pad);
      return Shape{in.n, op.out_c, gy.out, gx.out};
    }
  }
  FF_CHECK_MSG(false, "bad QuantOp kind");
  return Shape{};
}

std::uint64_t OpMacs(const QuantOp& op, const Shape& out) {
  switch (op.kind) {
    case QuantOp::Kind::kDense:
      return static_cast<std::uint64_t>(op.in_c * op.out_c);
    case QuantOp::Kind::kConv:
      return static_cast<std::uint64_t>(out.h * out.w * op.in_c * op.k *
                                        op.k * op.out_c);
    case QuantOp::Kind::kDepthwise:
      return static_cast<std::uint64_t>(out.h * out.w * op.out_c * op.k *
                                        op.k);
  }
  return 0;
}

QTensor RunOp(const QuantOp& op, const QTensor& in, const ActQuant& in_q) {
  const Shape out_shape = OpOutputShape(op, in.shape);
  QTensor out(out_shape);
  const std::int64_t oh = out_shape.h, ow = out_shape.w;
  const std::int64_t plane = oh * ow;
  const auto flops =
      static_cast<std::int64_t>(2 * OpMacs(op, out_shape)) * in.shape.n;

  if (op.kind == QuantOp::Kind::kDense) {
    const std::int64_t in_dim = op.in_c;
    kernels::ForEachPlaneBlock(
        in.shape.n, op.out_c, flops,
        [&](std::int64_t n, std::int64_t u0, std::int64_t u1) {
          const std::uint8_t* xp = in.plane(n, 0);
          for (std::int64_t u = u0; u < u1; ++u) {
            const std::int32_t acc = kernels::QDot(
                xp, &op.w[static_cast<std::size_t>(u * in_dim)], in_dim);
            kernels::QRequant(&acc, op.rscale[static_cast<std::size_t>(u)],
                              op.rbias[static_cast<std::size_t>(u)],
                              out.plane(n, u), 1);
          }
        });
    return out;
  }

  if (op.kind == QuantOp::Kind::kConv && op.k == 1 && op.stride == 1) {
    // Pointwise fast path: ~75% of the trunk's multiply-adds. Each image is
    // packed into the channel-quad layout once, so every output channel
    // streams pure maddubs+madd with no per-channel byte transpose (the
    // transpose is what bounds qpw_acc2 at trunk-sized planes). The packed
    // kernels are bitwise-identical to the unpacked ones under the pinned
    // pair rule.
    const std::int64_t quads = (op.in_c + 3) / 4;
    std::vector<std::vector<std::uint8_t>> packed(
        static_cast<std::size_t>(in.shape.n));
    std::vector<const std::uint8_t*> xs(static_cast<std::size_t>(op.in_c));
    for (std::int64_t n = 0; n < in.shape.n; ++n) {
      for (std::int64_t ic = 0; ic < op.in_c; ++ic) {
        xs[static_cast<std::size_t>(ic)] = in.plane(n, ic);
      }
      packed[static_cast<std::size_t>(n)].resize(
          static_cast<std::size_t>(quads * 4 * plane));
      kernels::QPwPack(xs.data(), op.in_c,
                       packed[static_cast<std::size_t>(n)].data(), plane);
    }
    kernels::ForEachPlaneBlock(
        in.shape.n, op.out_c, flops,
        [&](std::int64_t n, std::int64_t oc0, std::int64_t oc1) {
          const std::uint8_t* pk =
              packed[static_cast<std::size_t>(n)].data();
          std::vector<std::int32_t> acc0(static_cast<std::size_t>(plane));
          std::vector<std::int32_t> acc1(static_cast<std::size_t>(plane));
          std::int64_t oc = oc0;
          for (; oc + 2 <= oc1; oc += 2) {
            std::fill(acc0.begin(), acc0.end(), 0);
            std::fill(acc1.begin(), acc1.end(), 0);
            kernels::QPwAcc2P(pk, op.in_c,
                              &op.w[static_cast<std::size_t>(oc * op.in_c)],
                              &op.w[static_cast<std::size_t>((oc + 1) *
                                                             op.in_c)],
                              acc0.data(), acc1.data(), plane);
            kernels::QRequant(acc0.data(),
                              op.rscale[static_cast<std::size_t>(oc)],
                              op.rbias[static_cast<std::size_t>(oc)],
                              out.plane(n, oc), plane);
            kernels::QRequant(acc1.data(),
                              op.rscale[static_cast<std::size_t>(oc + 1)],
                              op.rbias[static_cast<std::size_t>(oc + 1)],
                              out.plane(n, oc + 1), plane);
          }
          for (; oc < oc1; ++oc) {
            std::fill(acc0.begin(), acc0.end(), 0);
            kernels::QPwAcc1P(pk, op.in_c,
                              &op.w[static_cast<std::size_t>(oc * op.in_c)],
                              acc0.data(), plane);
            kernels::QRequant(acc0.data(),
                              op.rscale[static_cast<std::size_t>(oc)],
                              op.rbias[static_cast<std::size_t>(oc)],
                              out.plane(n, oc), plane);
          }
        });
    return out;
  }

  // KxK conv / depthwise over a zero-point-padded copy of each image.
  const AxisGeometry gy = ComputeAxisGeometry(in.shape.h, op.k, op.stride,
                                              op.pad);
  const AxisGeometry gx = ComputeAxisGeometry(in.shape.w, op.k, op.stride,
                                              op.pad);
  const std::int64_t ph = (oh - 1) * op.stride + op.k;
  const std::int64_t pw = (ow - 1) * op.stride + op.k;
  std::vector<std::vector<std::uint8_t>> padded(
      static_cast<std::size_t>(in.shape.n));
  for (std::int64_t n = 0; n < in.shape.n; ++n) {
    PadImage(in, n, in_q.zero_point, ph, pw, gy.pad_begin, gx.pad_begin,
             padded[static_cast<std::size_t>(n)]);
  }

  kernels::ForEachPlaneBlock(
      in.shape.n, op.out_c,
      flops, [&](std::int64_t n, std::int64_t oc0, std::int64_t oc1) {
        const std::uint8_t* pimg = padded[static_cast<std::size_t>(n)].data();
        std::vector<std::int32_t> acc(static_cast<std::size_t>(plane));
        for (std::int64_t oc = oc0; oc < oc1; ++oc) {
          std::fill(acc.begin(), acc.end(), 0);
          if (op.kind == QuantOp::Kind::kDepthwise) {
            const std::uint8_t* pplane = pimg + oc * ph * pw;
            const std::int8_t* wrow =
                &op.w[static_cast<std::size_t>(oc * op.k * op.k)];
            for (std::int64_t ky = 0; ky < op.k; ++ky) {
              for (std::int64_t kx = 0; kx < op.k; ++kx) {
                AccumulateTap(wrow[ky * op.k + kx], pplane, pw, ky, kx,
                              op.stride, acc.data(), oh, ow);
              }
            }
          } else {
            for (std::int64_t ic = 0; ic < op.in_c; ++ic) {
              const std::uint8_t* pplane = pimg + ic * ph * pw;
              const std::int8_t* wrow =
                  &op.w[static_cast<std::size_t>((oc * op.in_c + ic) *
                                                 op.k * op.k)];
              for (std::int64_t ky = 0; ky < op.k; ++ky) {
                for (std::int64_t kx = 0; kx < op.k; ++kx) {
                  AccumulateTap(wrow[ky * op.k + kx], pplane, pw, ky, kx,
                                op.stride, acc.data(), oh, ow);
                }
              }
            }
          }
          kernels::QRequant(acc.data(),
                            op.rscale[static_cast<std::size_t>(oc)],
                            op.rbias[static_cast<std::size_t>(oc)],
                            out.plane(n, oc), plane);
        }
      });
  return out;
}

// The fused-op grouping shared by Plan and Quantize: (compute layer index,
// optional activation index, one-past-last source index).
struct OpGroup {
  std::size_t compute = 0;
  bool fused_act = false;
  std::size_t end = 0;
};

std::vector<OpGroup> GroupLayers(Sequential& net) {
  std::vector<OpGroup> groups;
  std::size_t i = 0;
  while (i < net.n_layers()) {
    Layer* l = &net.layer(i);
    const bool quantizable = dynamic_cast<Conv2D*>(l) != nullptr ||
                             dynamic_cast<DepthwiseConv2D*>(l) != nullptr ||
                             dynamic_cast<FullyConnected*>(l) != nullptr;
    if (!quantizable) break;
    OpGroup g;
    g.compute = i;
    g.end = i + 1;
    if (i + 1 < net.n_layers()) {
      if (auto* act = dynamic_cast<Activation*>(&net.layer(i + 1));
          act != nullptr &&
          (act->kind() == ActKind::kRelu || act->kind() == ActKind::kRelu6)) {
        g.fused_act = true;
        g.end = i + 2;
      }
    }
    groups.push_back(g);
    i = g.end;
  }
  return groups;
}

QuantOp PlanOp(Sequential& net, const OpGroup& g) {
  QuantOp op;
  Layer& l = net.layer(g.compute);
  op.name = g.fused_act ? net.layer(g.compute + 1).name() : l.name();
  if (auto* conv = dynamic_cast<Conv2D*>(&l)) {
    op.kind = QuantOp::Kind::kConv;
    op.in_c = conv->in_channels();
    op.out_c = conv->out_channels();
    op.k = conv->kernel();
    op.stride = conv->stride();
    op.pad = conv->padding();
  } else if (auto* dw = dynamic_cast<DepthwiseConv2D*>(&l)) {
    op.kind = QuantOp::Kind::kDepthwise;
    op.in_c = dw->channels();
    op.out_c = dw->channels();
    op.k = dw->kernel();
    op.stride = dw->stride();
    op.pad = dw->padding();
  } else {
    auto* fc = dynamic_cast<FullyConnected*>(&l);
    FF_CHECK(fc != nullptr);
    op.kind = QuantOp::Kind::kDense;
    op.in_c = fc->in_dim();
    op.out_c = fc->units();
  }
  // s32 accumulator headroom: each saturated pair contributes at most
  // ±32767, so the reduction length must stay under 2^31 / 32767 * 2.
  const std::int64_t red = op.kind == QuantOp::Kind::kDense
                               ? op.in_c
                               : op.in_c * op.k * op.k;
  FF_CHECK_MSG(red <= 131072,
               op.name << ": reduction length " << red
                       << " exceeds int8 accumulator headroom");
  op.w.assign(op.WeightCount(), 0);
  op.rscale.assign(static_cast<std::size_t>(op.out_c), 0.0f);
  op.rbias.assign(static_cast<std::size_t>(op.out_c), 0.0f);
  return op;
}

}  // namespace

std::size_t QuantOp::WeightCount() const {
  switch (kind) {
    case Kind::kConv:
      return static_cast<std::size_t>(out_c * in_c * k * k);
    case Kind::kDepthwise:
      return static_cast<std::size_t>(out_c * k * k);
    case Kind::kDense:
      return static_cast<std::size_t>(out_c * in_c);
  }
  return 0;
}

bool QuantizedProgram::Covers(const std::string& name) const {
  for (const auto& op : ops_) {
    if (op.name == name) return true;
  }
  return false;
}

Tensor QuantizedProgram::Forward(const TensorView& in) const {
  FF_CHECK(!ops_.empty());
  QTensor cur = QuantizeInput(in, in_q_);
  const ActQuant* cur_q = &in_q_;
  for (const auto& op : ops_) {
    cur = RunOp(op, cur, *cur_q);
    cur_q = &op.out_q;
  }
  return Dequantize(cur, *cur_q);
}

std::map<std::string, Tensor> QuantizedProgram::ForwardWithTaps(
    const TensorView& in, const std::set<std::string>& taps) const {
  FF_CHECK(!ops_.empty());
  std::size_t deepest = 0;
  for (const auto& t : taps) {
    bool found = false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].name == t) {
        deepest = std::max(deepest, i);
        found = true;
        break;
      }
    }
    FF_CHECK_MSG(found, "tap " << t << " not covered by quantized program");
  }
  std::map<std::string, Tensor> out;
  QTensor cur = QuantizeInput(in, in_q_);
  const ActQuant* cur_q = &in_q_;
  for (std::size_t i = 0; i <= deepest; ++i) {
    cur = RunOp(ops_[i], cur, *cur_q);
    cur_q = &ops_[i].out_q;
    if (taps.count(ops_[i].name) > 0) {
      out.emplace(ops_[i].name, Dequantize(cur, *cur_q));
    }
  }
  return out;
}

QuantizedProgram Quantizer::Plan(Sequential& net) {
  const auto groups = GroupLayers(net);
  FF_CHECK_MSG(!groups.empty(),
               net.name() << ": first layer is not quantizable (needs a "
                             "conv/depthwise/dense prefix)");
  QuantizedProgram prog;
  for (const auto& g : groups) {
    prog.ops_.push_back(PlanOp(net, g));
  }
  prog.resume_index_ = groups.back().end;
  return prog;
}

QuantizedProgram Quantizer::Quantize(Sequential& net,
                                     const TensorView& calib) {
  QuantizedProgram prog = Plan(net);
  const auto groups = GroupLayers(net);

  // Activation stats from a float forward over the calibration batch.
  Tensor cur = calib.Materialize();
  prog.in_q_ = ActQuantFromStats(cur.MaxAbs(), cur.Min());
  std::vector<ActQuant> out_q(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = groups[g].compute; i < groups[g].end; ++i) {
      cur = net.layer(i).Forward(cur);
    }
    out_q[g] = ActQuantFromStats(cur.MaxAbs(), cur.Min());
    prog.ops_[g].out_q = out_q[g];
  }

  // Per-output-channel symmetric weight quantization + folded requant
  // parameters (double intermediates; the kernels only ever see the final
  // f32 rscale/rbias).
  const ActQuant* in_q = &prog.in_q_;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    QuantOp& op = prog.ops_[g];
    Layer& l = net.layer(groups[g].compute);
    const std::vector<float>* wf = nullptr;
    const std::vector<float>* bf = nullptr;
    if (auto* conv = dynamic_cast<Conv2D*>(&l)) {
      wf = &conv->weights();
      bf = &conv->bias();
    } else if (auto* dw = dynamic_cast<DepthwiseConv2D*>(&l)) {
      wf = &dw->weights();
      bf = &dw->bias();
    } else {
      auto* fc = dynamic_cast<FullyConnected*>(&l);
      wf = &fc->weights();
      bf = &fc->bias();
    }
    const std::size_t row =
        op.WeightCount() / static_cast<std::size_t>(op.out_c);
    FF_CHECK_EQ(wf->size(), op.WeightCount());
    for (std::int64_t oc = 0; oc < op.out_c; ++oc) {
      const float* wrow = wf->data() + static_cast<std::size_t>(oc) * row;
      float absmax = 0.0f;
      for (std::size_t j = 0; j < row; ++j) {
        absmax = std::max(absmax, std::fabs(wrow[j]));
      }
      const double sw = absmax > 0.0f ? absmax / 127.0 : 1.0;
      std::int8_t* qrow =
          op.w.data() + static_cast<std::size_t>(oc) * row;
      std::int64_t wsum = 0;
      for (std::size_t j = 0; j < row; ++j) {
        const auto q = static_cast<std::int32_t>(
            std::nearbyint(static_cast<double>(wrow[j]) / sw));
        const std::int32_t qc = std::clamp(q, -127, 127);
        qrow[j] = static_cast<std::int8_t>(qc);
        wsum += qc;
      }
      const double rscale = sw * static_cast<double>(in_q->scale) /
                            static_cast<double>(op.out_q.scale);
      const double rbias =
          static_cast<double>((*bf)[static_cast<std::size_t>(oc)]) /
              static_cast<double>(op.out_q.scale) +
          static_cast<double>(op.out_q.zero_point) -
          rscale * static_cast<double>(in_q->zero_point) *
              static_cast<double>(wsum);
      op.rscale[static_cast<std::size_t>(oc)] = static_cast<float>(rscale);
      op.rbias[static_cast<std::size_t>(oc)] = static_cast<float>(rbias);
    }
    in_q = &prog.ops_[g].out_q;
  }
  return prog;
}

}  // namespace ff::nn
