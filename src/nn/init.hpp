// Deterministic weight initialization.
//
// Each parameter blob is seeded by hash(network seed, blob name), so adding
// or reordering layers does not reshuffle the weights of existing layers and
// every run reproduces the same network bit-for-bit.
#pragma once

#include <cstdint>

#include "nn/sequential.hpp"

namespace ff::nn {

// He-normal initialization for weights (stddev = sqrt(2 / fan_in)) and zero
// biases, applied to every parameter of `net`.
void HeInit(Sequential& net, std::uint64_t seed);

// He-normal init for a single layer's parameters.
void HeInitLayer(Layer& layer, std::uint64_t seed);

}  // namespace ff::nn
