// Layer interface for the from-scratch NN engine.
//
// Design notes:
//  * Forward() takes a non-owning tensor::TensorView (owning Tensors convert
//    implicitly), so the multi-tenant edge node can feed cropped or
//    full-frame feature-map taps without materializing a per-tenant copy.
//    Kernels read through the view's row stride; layers that genuinely need
//    dense storage materialize internally.
//  * Forward() is usable standalone for inference. When training() is set,
//    layers retain whatever context Backward() needs (inputs, masks,
//    argmaxes). Inference mode retains nothing, keeping the multi-tenant
//    pipeline's memory footprint flat.
//  * Backward() accumulates parameter gradients (so shared-weight layers can
//    be applied several times per step) and returns the input gradient.
//  * Macs() implements the multiply-add formulas of paper §4.5; Fig. 7's
//    x-axis is produced by these, not by timing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/tensor_view.hpp"

namespace ff::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;

// Non-owning handle to one parameter blob and its gradient accumulator.
struct ParamView {
  std::string name;
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  // Shape of the output produced for input shape `in`; checks validity.
  virtual Shape OutputShape(const Shape& in) const = 0;

  virtual Tensor Forward(const TensorView& in) = 0;

  // Gradient w.r.t. the layer input, given gradient w.r.t. the output of the
  // most recent Forward() (which must have run with training() == true).
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Parameter blobs (empty for stateless layers).
  virtual std::vector<ParamView> Params() { return {}; }

  // Multiply-adds for one forward pass on input shape `in` (per batch image).
  virtual std::uint64_t Macs(const Shape& in) const = 0;

  void set_training(bool t) { training_ = t; }
  bool training() const { return training_; }

  // Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : Params()) {
      std::fill(p.grad->begin(), p.grad->end(), 0.0f);
    }
  }

 protected:
  bool training_ = false;

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace ff::nn
