// SIMD micro-kernels. See kernels.hpp for the bitwise-parity contract.
//
// This file is compiled with -ffp-contract=off (src/CMakeLists.txt) so that
// even under -march=x86-64-v3 the compiler cannot fuse the scalar reference
// path's multiply+add into an FMA — the SIMD paths deliberately use separate
// mul/add, and parity is the whole point.

#include "nn/kernels.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.hpp"
#include "util/env.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FF_KERNELS_X86 1
#include <immintrin.h>
#else
#define FF_KERNELS_X86 0
#endif

namespace ff::nn::kernels {

// Scalar reference pieces of the int8 path, shared by every ISA's tail and
// remainder loops so the bitwise contract holds by construction.
namespace qdetail {
namespace {

inline std::int32_t QSat16(std::int32_t v) {
  return v < -32768 ? -32768 : (v > 32767 ? 32767 : v);
}

// Contribution of channels [ic0, n_ic) at pixel i under the pinned pair
// rule. ic0 must be even so pair boundaries line up with the full sequence.
inline std::int32_t QPwPixel(const std::uint8_t* const* x, std::int64_t ic0,
                             std::int64_t n_ic, const std::int8_t* w,
                             std::int64_t i) {
  std::int32_t a = 0;
  std::int64_t ic = ic0;
  for (; ic + 2 <= n_ic; ic += 2) {
    a += QSat16(static_cast<std::int32_t>(w[ic]) * x[ic][i] +
                static_cast<std::int32_t>(w[ic + 1]) * x[ic + 1][i]);
  }
  if (ic < n_ic) a += static_cast<std::int32_t>(w[ic]) * x[ic][i];
  return a;
}

// Pair-rule dot over [0, n); the caller guarantees any SIMD prefix consumed
// an even number of elements so the pairing stays globally aligned.
inline std::int32_t QDotTail(const std::uint8_t* x, const std::int8_t* w,
                             std::int64_t n) {
  std::int32_t a = 0;
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    a += QSat16(static_cast<std::int32_t>(w[i]) * x[i] +
                static_cast<std::int32_t>(w[i + 1]) * x[i + 1]);
  }
  if (i < n) a += static_cast<std::int32_t>(w[i]) * x[i];
  return a;
}

// clamp-to-[0,255] then round-to-nearest-even, the scalar twin of the SIMD
// max/min + cvtps sequence (max first so NaN -> 0, like relu).
inline std::uint8_t QClampU8(float t) {
  t = t > 0.0f ? t : 0.0f;
  t = t < 255.0f ? t : 255.0f;
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(std::nearbyintf(t)));
}

inline std::uint8_t QRequantOne(std::int32_t a, float scale, float bias) {
  float t = static_cast<float>(a) * scale;
  t = t + bias;
  return QClampU8(t);
}

inline std::uint8_t QQuantOne(float v, float inv_scale, float zp) {
  float t = v * inv_scale;
  t = t + zp;
  return QClampU8(t);
}

inline float QDequantOne(std::uint8_t v, float scale, std::int32_t zp) {
  return static_cast<float>(static_cast<std::int32_t>(v) - zp) * scale;
}

// The 4 weight bytes of a channel quad packed little-endian for set1_epi32.
inline int QuadBits(const std::int8_t* w) {
  const std::uint32_t b =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(w[0])) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(w[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(w[2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(w[3])) << 24);
  return static_cast<int>(b);
}

// Weight quad q of an n_ic-channel row, zero-padded past the end — the
// weight-side twin of qpw_pack's zero-filled padding channels.
inline void QuadW(const std::int8_t* w, std::int64_t q, std::int64_t n_ic,
                  std::int8_t out[4]) {
  for (int j = 0; j < 4; ++j) {
    const std::int64_t ic = 4 * q + j;
    out[j] = ic < n_ic ? w[ic] : 0;
  }
}

// Pinned pair rule applied to one packed pixel (4 channel bytes) against a
// possibly zero-padded weight quad. A zero-weight pair member contributes 0
// inside the saturation and a lone u8*s8 product can never saturate, so the
// padded quad is bitwise-identical to the unpacked tail rule.
inline std::int32_t QPackedPixel(const std::uint8_t* p,
                                 const std::int8_t* wq) {
  return QSat16(static_cast<std::int32_t>(wq[0]) * p[0] +
                static_cast<std::int32_t>(wq[1]) * p[1]) +
         QSat16(static_cast<std::int32_t>(wq[2]) * p[2] +
                static_cast<std::int32_t>(wq[3]) * p[3]);
}

}  // namespace
}  // namespace qdetail

namespace scalar {
namespace {

void Fill(float* y, std::int64_t n, float v) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = v;
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Axpy4(const float* w, const float* x, float* y0, float* y1, float* y2,
           float* y3, std::int64_t n) {
  const float w0 = w[0], w1 = w[1], w2 = w[2], w3 = w[3];
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    y0[i] += w0 * v;
    y1[i] += w1 * v;
    y2[i] += w2 * v;
    y3[i] += w3 * v;
  }
}

void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
              std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    Axpy(a, x + r * x_stride, y + r * y_stride, n);
  }
}

void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
               float* y0, float* y1, float* y2, float* y3,
               std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    Axpy4(w, x + r * x_stride, y0 + r * y_stride, y1 + r * y_stride,
          y2 + r * y_stride, y3 + r * y_stride, n);
  }
}

void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
            std::int64_t w_stride, float* y0, float* y1, float* y2, float* y3,
            std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  for (std::int64_t i = 0; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
            float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

// The pinned reduction scheme: lane j accumulates indices i ≡ j (mod 8).
double Dot(const float* a, const float* b, std::int64_t n) {
  double s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int j = 0; j < 8; ++j) {
      s[j] += static_cast<double>(a[i + j]) * static_cast<double>(b[i + j]);
    }
  }
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

void Relu(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void Relu6(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                    std::int64_t n) {
  std::uint32_t sad = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                       const std::uint8_t* b, std::int64_t stride_b) {
  std::uint32_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    sad += SadU8(a + y * stride_a, b + y * stride_b, 16);
  }
  return sad;
}

void QAxpyRows(std::int32_t w, const std::uint8_t* x, std::int64_t x_stride,
               std::int32_t* acc, std::int64_t acc_stride, std::int64_t rows,
               std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    for (std::int64_t i = 0; i < n; ++i) ar[i] += w * xr[i];
  }
}

void QPwAcc1(const std::uint8_t* const* x, std::int64_t n_ic,
             const std::int8_t* w, std::int32_t* acc, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    acc[i] += qdetail::QPwPixel(x, 0, n_ic, w, i);
  }
}

void QPwAcc2(const std::uint8_t* const* x, std::int64_t n_ic,
             const std::int8_t* w0, const std::int8_t* w1, std::int32_t* acc0,
             std::int32_t* acc1, std::int64_t n) {
  QPwAcc1(x, n_ic, w0, acc0, n);
  QPwAcc1(x, n_ic, w1, acc1, n);
}

void QPwPack(const std::uint8_t* const* x, std::int64_t n_ic,
             std::uint8_t* out, std::int64_t n) {
  const std::int64_t quads = (n_ic + 3) / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    std::uint8_t* oq = out + q * 4 * n;
    for (std::int64_t j = 0; j < 4; ++j) {
      const std::int64_t ic = 4 * q + j;
      if (ic < n_ic) {
        const std::uint8_t* xp = x[ic];
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = xp[i];
      } else {
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = 0;
      }
    }
  }
}

void QPwAcc1P(const std::uint8_t* packed, std::int64_t n_ic,
              const std::int8_t* w, std::int32_t* acc, std::int64_t n) {
  const std::int64_t quads = (n_ic + 3) / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    std::int8_t wq[4];
    qdetail::QuadW(w, q, n_ic, wq);
    const std::uint8_t* pq = packed + q * 4 * n;
    for (std::int64_t i = 0; i < n; ++i) {
      acc[i] += qdetail::QPackedPixel(pq + 4 * i, wq);
    }
  }
}

void QPwAcc2P(const std::uint8_t* packed, std::int64_t n_ic,
              const std::int8_t* w0, const std::int8_t* w1,
              std::int32_t* acc0, std::int32_t* acc1, std::int64_t n) {
  QPwAcc1P(packed, n_ic, w0, acc0, n);
  QPwAcc1P(packed, n_ic, w1, acc1, n);
}

void QAxpyRowsS2(std::int32_t w, const std::uint8_t* x,
                 std::int64_t x_stride, std::int32_t* acc,
                 std::int64_t acc_stride, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    for (std::int64_t i = 0; i < n; ++i) ar[i] += w * xr[2 * i];
  }
}

std::int32_t QDot(const std::uint8_t* x, const std::int8_t* w,
                  std::int64_t n) {
  return qdetail::QDotTail(x, w, n);
}

void QRequant(const std::int32_t* acc, float scale, float bias,
              std::uint8_t* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = qdetail::QRequantOne(acc[i], scale, bias);
  }
}

void QDequant(const std::uint8_t* x, float scale, std::int32_t zp, float* y,
              std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = qdetail::QDequantOne(x[i], scale, zp);
  }
}

void QQuant(const float* x, float inv_scale, float zp, std::uint8_t* y,
            std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = qdetail::QQuantOne(x[i], inv_scale, zp);
  }
}

constexpr OpTable kTable = {Fill,     Axpy,      Axpy4,    AxpyRows,
                            Axpy4Rows, PwAcc4,   PwAcc1,   Dot,
                            Relu,     Relu6,     SadU8,    Sad16x16,
                            QAxpyRows, QPwAcc1,  QPwAcc2,  QPwPack,
                            QPwAcc1P, QPwAcc2P,  QAxpyRowsS2, QDot,
                            QRequant, QDequant,  QQuant};

}  // namespace

const OpTable& Table() { return kTable; }

}  // namespace scalar

#if FF_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 — x86-64 baseline, always available on this architecture.
// ---------------------------------------------------------------------------
namespace sse2 {
namespace {

void Fill(float* y, std::int64_t n, float v) {
  const __m128 vv = _mm_set1_ps(v);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) _mm_storeu_ps(y + i, vv);
  for (; i < n; ++i) y[i] = v;
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vy = _mm_loadu_ps(y + i);
    _mm_storeu_ps(y + i, _mm_add_ps(vy, _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void Axpy4(const float* w, const float* x, float* y0, float* y1, float* y2,
           float* y3, std::int64_t n) {
  const __m128 w0 = _mm_set1_ps(w[0]), w1 = _mm_set1_ps(w[1]);
  const __m128 w2 = _mm_set1_ps(w[2]), w3 = _mm_set1_ps(w[3]);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(x + i);
    _mm_storeu_ps(y0 + i, _mm_add_ps(_mm_loadu_ps(y0 + i), _mm_mul_ps(w0, v)));
    _mm_storeu_ps(y1 + i, _mm_add_ps(_mm_loadu_ps(y1 + i), _mm_mul_ps(w1, v)));
    _mm_storeu_ps(y2 + i, _mm_add_ps(_mm_loadu_ps(y2 + i), _mm_mul_ps(w2, v)));
    _mm_storeu_ps(y3 + i, _mm_add_ps(_mm_loadu_ps(y3 + i), _mm_mul_ps(w3, v)));
  }
  for (; i < n; ++i) {
    const float v = x[i];
    y0[i] += w[0] * v;
    y1[i] += w[1] * v;
    y2[i] += w[2] * v;
    y3[i] += w[3] * v;
  }
}

void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
              std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  const __m128 va = _mm_set1_ps(a);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* yr = y + r * y_stride;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128 vy = _mm_loadu_ps(yr + i);
      _mm_storeu_ps(yr + i,
                    _mm_add_ps(vy, _mm_mul_ps(va, _mm_loadu_ps(xr + i))));
    }
    for (; i < n; ++i) yr[i] += a * xr[i];
  }
}

void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
               float* y0, float* y1, float* y2, float* y3,
               std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  const __m128 w0 = _mm_set1_ps(w[0]), w1 = _mm_set1_ps(w[1]);
  const __m128 w2 = _mm_set1_ps(w[2]), w3 = _mm_set1_ps(w[3]);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* r0 = y0 + r * y_stride;
    float* r1 = y1 + r * y_stride;
    float* r2 = y2 + r * y_stride;
    float* r3 = y3 + r * y_stride;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128 v = _mm_loadu_ps(xr + i);
      _mm_storeu_ps(r0 + i,
                    _mm_add_ps(_mm_loadu_ps(r0 + i), _mm_mul_ps(w0, v)));
      _mm_storeu_ps(r1 + i,
                    _mm_add_ps(_mm_loadu_ps(r1 + i), _mm_mul_ps(w1, v)));
      _mm_storeu_ps(r2 + i,
                    _mm_add_ps(_mm_loadu_ps(r2 + i), _mm_mul_ps(w2, v)));
      _mm_storeu_ps(r3 + i,
                    _mm_add_ps(_mm_loadu_ps(r3 + i), _mm_mul_ps(w3, v)));
    }
    for (; i < n; ++i) {
      const float v = xr[i];
      r0[i] += w[0] * v;
      r1[i] += w[1] * v;
      r2[i] += w[2] * v;
      r3[i] += w[3] * v;
    }
  }
}

void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
            std::int64_t w_stride, float* y0, float* y1, float* y2, float* y3,
            std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 a0 = _mm_loadu_ps(y0 + i), a1 = _mm_loadu_ps(y1 + i);
    __m128 a2 = _mm_loadu_ps(y2 + i), a3 = _mm_loadu_ps(y3 + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m128 v = _mm_loadu_ps(x[ic] + i);
      a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_set1_ps(w0[ic]), v));
      a1 = _mm_add_ps(a1, _mm_mul_ps(_mm_set1_ps(w1[ic]), v));
      a2 = _mm_add_ps(a2, _mm_mul_ps(_mm_set1_ps(w2[ic]), v));
      a3 = _mm_add_ps(a3, _mm_mul_ps(_mm_set1_ps(w3[ic]), v));
    }
    _mm_storeu_ps(y0 + i, a0);
    _mm_storeu_ps(y1 + i, a1);
    _mm_storeu_ps(y2 + i, a2);
    _mm_storeu_ps(y3 + i, a3);
  }
  for (; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
            float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 a = _mm_loadu_ps(y + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      a = _mm_add_ps(
          a, _mm_mul_ps(_mm_set1_ps(w[ic]), _mm_loadu_ps(x[ic] + i)));
    }
    _mm_storeu_ps(y + i, a);
  }
  for (; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

double Dot(const float* a, const float* b, std::int64_t n) {
  // Lanes (0,1), (2,3), (4,5), (6,7) of the pinned 8-lane scheme.
  __m128d s01 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
  __m128d s45 = _mm_setzero_pd(), s67 = _mm_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 alo = _mm_loadu_ps(a + i), ahi = _mm_loadu_ps(a + i + 4);
    const __m128 blo = _mm_loadu_ps(b + i), bhi = _mm_loadu_ps(b + i + 4);
    s01 = _mm_add_pd(s01, _mm_mul_pd(_mm_cvtps_pd(alo), _mm_cvtps_pd(blo)));
    s23 = _mm_add_pd(s23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(alo, alo)),
                                     _mm_cvtps_pd(_mm_movehl_ps(blo, blo))));
    s45 = _mm_add_pd(s45, _mm_mul_pd(_mm_cvtps_pd(ahi), _mm_cvtps_pd(bhi)));
    s67 = _mm_add_pd(s67, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(ahi, ahi)),
                                     _mm_cvtps_pd(_mm_movehl_ps(bhi, bhi))));
  }
  alignas(16) double s[8];
  _mm_store_pd(s + 0, s01);
  _mm_store_pd(s + 2, s23);
  _mm_store_pd(s + 4, s45);
  _mm_store_pd(s + 6, s67);
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

void Relu(const float* x, float* y, std::int64_t n) {
  const __m128 zero = _mm_setzero_ps();
  std::int64_t i = 0;
  // max(x, 0): maxps returns the second operand on NaN, so NaN -> 0,
  // matching the scalar `v > 0 ? v : 0`.
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_max_ps(_mm_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void Relu6(const float* x, float* y, std::int64_t n) {
  const __m128 zero = _mm_setzero_ps();
  const __m128 six = _mm_set1_ps(6.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i,
                  _mm_min_ps(_mm_max_ps(_mm_loadu_ps(x + i), zero), six));
  }
  for (; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                    std::int64_t n) {
  __m128i acc = _mm_setzero_si128();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
  }
  std::uint32_t sad = static_cast<std::uint32_t>(
      _mm_cvtsi128_si64(acc) + _mm_cvtsi128_si64(_mm_srli_si128(acc, 8)));
  for (; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                       const std::uint8_t* b, std::int64_t stride_b) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; ++y) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + y * stride_a));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + y * stride_b));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
  }
  return static_cast<std::uint32_t>(
      _mm_cvtsi128_si64(acc) + _mm_cvtsi128_si64(_mm_srli_si128(acc, 8)));
}

void QAxpyRows(std::int32_t w, const std::uint8_t* x, std::int64_t x_stride,
               std::int32_t* acc, std::int64_t acc_stride, std::int64_t rows,
               std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i wv = _mm_set1_epi16(static_cast<short>(w));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m128i xb =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(xr + i));
      // |w * x| <= 127*255 = 32385, so the s16 product is exact.
      const __m128i p = _mm_mullo_epi16(_mm_unpacklo_epi8(xb, zero), wv);
      const __m128i sign = _mm_cmpgt_epi16(zero, p);
      const __m128i plo = _mm_unpacklo_epi16(p, sign);
      const __m128i phi = _mm_unpackhi_epi16(p, sign);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(ar + i),
          _mm_add_epi32(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar + i)), plo));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(ar + i + 4),
          _mm_add_epi32(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(ar + i + 4)),
                        phi));
    }
    for (; i < n; ++i) ar[i] += w * xr[i];
  }
}

// Emulates maddubs+madd for one transposed channel quad `u` (16 bytes =
// 4 pixels x 4 channels): exact u8*s8 pair sums via madd, saturated to s16
// via packs, then summed per pixel. wq holds [w0..w3, w0..w3] as s16.
inline __m128i QQuadMadd(__m128i u, __m128i wq, __m128i zero, __m128i ones) {
  const __m128i xlo = _mm_unpacklo_epi8(u, zero);  // px0, px1 quads as u16
  const __m128i xhi = _mm_unpackhi_epi8(u, zero);  // px2, px3
  const __m128i mlo = _mm_madd_epi16(xlo, wq);     // exact pair sums
  const __m128i mhi = _mm_madd_epi16(xhi, wq);
  const __m128i s = _mm_packs_epi32(mlo, mhi);     // sat16 per pair
  return _mm_madd_epi16(s, ones);                  // per-pixel quad sums
}

void QPwAcc1(const std::uint8_t* const* x, std::int64_t n_ic,
             const std::int8_t* w, std::int32_t* acc, std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi16(1);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i + 4));
    __m128i a2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i + 8));
    __m128i a3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i + 12));
    std::int64_t ic = 0;
    for (; ic + 4 <= n_ic; ic += 4) {
      const __m128i r0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[ic] + i));
      const __m128i r1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[ic + 1] + i));
      const __m128i r2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[ic + 2] + i));
      const __m128i r3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[ic + 3] + i));
      // Byte transpose: u_k holds pixels 4k..4k+3 as contiguous channel
      // quads [c0 c1 c2 c3] per pixel.
      const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
      const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
      const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
      const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
      const __m128i u0 = _mm_unpacklo_epi16(t0, t2);
      const __m128i u1 = _mm_unpackhi_epi16(t0, t2);
      const __m128i u2 = _mm_unpacklo_epi16(t1, t3);
      const __m128i u3 = _mm_unpackhi_epi16(t1, t3);
      const __m128i wq =
          _mm_set_epi16(w[ic + 3], w[ic + 2], w[ic + 1], w[ic], w[ic + 3],
                        w[ic + 2], w[ic + 1], w[ic]);
      a0 = _mm_add_epi32(a0, QQuadMadd(u0, wq, zero, ones));
      a1 = _mm_add_epi32(a1, QQuadMadd(u1, wq, zero, ones));
      a2 = _mm_add_epi32(a2, QQuadMadd(u2, wq, zero, ones));
      a3 = _mm_add_epi32(a3, QQuadMadd(u3, wq, zero, ones));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i + 4), a1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i + 8), a2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i + 12), a3);
    if (ic < n_ic) {
      for (std::int64_t p = 0; p < 16; ++p) {
        acc[i + p] += qdetail::QPwPixel(x, ic, n_ic, w, i + p);
      }
    }
  }
  for (; i < n; ++i) acc[i] += qdetail::QPwPixel(x, 0, n_ic, w, i);
}

void QPwAcc2(const std::uint8_t* const* x, std::int64_t n_ic,
             const std::int8_t* w0, const std::int8_t* w1, std::int32_t* acc0,
             std::int32_t* acc1, std::int64_t n) {
  QPwAcc1(x, n_ic, w0, acc0, n);
  QPwAcc1(x, n_ic, w1, acc1, n);
}

void QPwPack(const std::uint8_t* const* x, std::int64_t n_ic,
             std::uint8_t* out, std::int64_t n) {
  const std::int64_t quads = n_ic / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    std::uint8_t* oq = out + q * 4 * n;
    const std::uint8_t* x0 = x[4 * q];
    const std::uint8_t* x1 = x[4 * q + 1];
    const std::uint8_t* x2 = x[4 * q + 2];
    const std::uint8_t* x3 = x[4 * q + 3];
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m128i r0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x0 + i));
      const __m128i r1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x1 + i));
      const __m128i r2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x2 + i));
      const __m128i r3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x3 + i));
      const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
      const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
      const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
      const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(oq + 4 * i),
                       _mm_unpacklo_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(oq + 4 * i + 16),
                       _mm_unpackhi_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(oq + 4 * i + 32),
                       _mm_unpacklo_epi16(t1, t3));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(oq + 4 * i + 48),
                       _mm_unpackhi_epi16(t1, t3));
    }
    for (; i < n; ++i) {
      oq[4 * i] = x0[i];
      oq[4 * i + 1] = x1[i];
      oq[4 * i + 2] = x2[i];
      oq[4 * i + 3] = x3[i];
    }
  }
  if (4 * quads < n_ic) {
    std::uint8_t* oq = out + quads * 4 * n;
    for (std::int64_t j = 0; j < 4; ++j) {
      const std::int64_t ic = 4 * quads + j;
      if (ic < n_ic) {
        const std::uint8_t* xp = x[ic];
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = xp[i];
      } else {
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = 0;
      }
    }
  }
}

void QPwAcc1P(const std::uint8_t* packed, std::int64_t n_ic,
              const std::int8_t* w, std::int32_t* acc, std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi16(1);
  const std::int64_t quads = (n_ic + 3) / 4;
  // s32 accumulation is exact, so streaming quad-by-quad reorders nothing.
  for (std::int64_t q = 0; q < quads; ++q) {
    std::int8_t wqb[4];
    qdetail::QuadW(w, q, n_ic, wqb);
    const __m128i wq =
        _mm_set_epi16(wqb[3], wqb[2], wqb[1], wqb[0], wqb[3], wqb[2],
                      wqb[1], wqb[0]);
    const std::uint8_t* pq = packed + q * 4 * n;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i u =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(pq + 4 * i));
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                       _mm_add_epi32(a, QQuadMadd(u, wq, zero, ones)));
    }
    for (; i < n; ++i) acc[i] += qdetail::QPackedPixel(pq + 4 * i, wqb);
  }
}

void QPwAcc2P(const std::uint8_t* packed, std::int64_t n_ic,
              const std::int8_t* w0, const std::int8_t* w1,
              std::int32_t* acc0, std::int32_t* acc1, std::int64_t n) {
  QPwAcc1P(packed, n_ic, w0, acc0, n);
  QPwAcc1P(packed, n_ic, w1, acc1, n);
}

void QAxpyRowsS2(std::int32_t w, const std::uint8_t* x,
                 std::int64_t x_stride, std::int32_t* acc,
                 std::int64_t acc_stride, std::int64_t rows, std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i wv = _mm_set1_epi16(static_cast<short>(w));
  const __m128i mask = _mm_set1_epi16(0x00FF);
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xr + 2 * i));
      // Even bytes zero-extended to u16; |w * x| <= 32385 so the s16
      // product is exact.
      const __m128i p = _mm_mullo_epi16(_mm_and_si128(b, mask), wv);
      const __m128i sign = _mm_cmpgt_epi16(zero, p);
      const __m128i plo = _mm_unpacklo_epi16(p, sign);
      const __m128i phi = _mm_unpackhi_epi16(p, sign);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(ar + i),
          _mm_add_epi32(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar + i)),
              plo));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(ar + i + 4),
          _mm_add_epi32(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(ar + i + 4)),
                        phi));
    }
    for (; i < n; ++i) ar[i] += w * xr[2 * i];
  }
}

std::int32_t QDot(const std::uint8_t* x, const std::int8_t* w,
                  std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi16(1);
  __m128i accv = _mm_setzero_si128();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i xb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i wb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    const __m128i xlo = _mm_unpacklo_epi8(xb, zero);
    const __m128i xhi = _mm_unpackhi_epi8(xb, zero);
    const __m128i wsign = _mm_cmpgt_epi8(zero, wb);
    const __m128i wlo = _mm_unpacklo_epi8(wb, wsign);
    const __m128i whi = _mm_unpackhi_epi8(wb, wsign);
    const __m128i mlo = _mm_madd_epi16(xlo, wlo);  // exact pair sums
    const __m128i mhi = _mm_madd_epi16(xhi, whi);
    const __m128i s = _mm_packs_epi32(mlo, mhi);   // sat16 per pair
    accv = _mm_add_epi32(accv, _mm_madd_epi16(s, ones));
  }
  alignas(16) std::int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), accv);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         qdetail::QDotTail(x + i, w + i, n - i);
}

void QRequant(const std::int32_t* acc, float scale, float bias,
              std::uint8_t* y, std::int64_t n) {
  const __m128 vs = _mm_set1_ps(scale);
  const __m128 vb = _mm_set1_ps(bias);
  const __m128 zero = _mm_setzero_ps();
  const __m128 v255 = _mm_set1_ps(255.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 t = _mm_cvtepi32_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i)));
    t = _mm_add_ps(_mm_mul_ps(t, vs), vb);
    t = _mm_max_ps(t, zero);  // NaN -> 0, like relu
    t = _mm_min_ps(t, v255);
    const __m128i q = _mm_cvtps_epi32(t);  // round-to-nearest-even
    const __m128i p16 = _mm_packs_epi32(q, q);
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    const int v = _mm_cvtsi128_si32(p8);
    std::memcpy(y + i, &v, 4);
  }
  for (; i < n; ++i) y[i] = qdetail::QRequantOne(acc[i], scale, bias);
}

void QDequant(const std::uint8_t* x, float scale, std::int32_t zp, float* y,
              std::int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i vzp = _mm_set1_epi32(zp);
  const __m128 vs = _mm_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int bits;
    std::memcpy(&bits, x + i, 4);
    const __m128i xb = _mm_cvtsi32_si128(bits);
    const __m128i x32 =
        _mm_unpacklo_epi16(_mm_unpacklo_epi8(xb, zero), zero);
    _mm_storeu_ps(y + i,
                  _mm_mul_ps(_mm_cvtepi32_ps(_mm_sub_epi32(x32, vzp)), vs));
  }
  for (; i < n; ++i) y[i] = qdetail::QDequantOne(x[i], scale, zp);
}

void QQuant(const float* x, float inv_scale, float zp, std::uint8_t* y,
            std::int64_t n) {
  const __m128 vs = _mm_set1_ps(inv_scale);
  const __m128 vzp = _mm_set1_ps(zp);
  const __m128 zero = _mm_setzero_ps();
  const __m128 v255 = _mm_set1_ps(255.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 t = _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + i), vs), vzp);
    t = _mm_max_ps(t, zero);
    t = _mm_min_ps(t, v255);
    const __m128i q = _mm_cvtps_epi32(t);
    const __m128i p16 = _mm_packs_epi32(q, q);
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    const int v = _mm_cvtsi128_si32(p8);
    std::memcpy(y + i, &v, 4);
  }
  for (; i < n; ++i) y[i] = qdetail::QQuantOne(x[i], inv_scale, zp);
}

constexpr OpTable kTable = {Fill,     Axpy,      Axpy4,    AxpyRows,
                            Axpy4Rows, PwAcc4,   PwAcc1,   Dot,
                            Relu,     Relu6,     SadU8,    Sad16x16,
                            QAxpyRows, QPwAcc1,  QPwAcc2,  QPwPack,
                            QPwAcc1P, QPwAcc2P,  QAxpyRowsS2, QDot,
                            QRequant, QDequant,  QQuant};

}  // namespace
}  // namespace sse2

// ---------------------------------------------------------------------------
// AVX2 — gated at runtime by CPUID; compiled via the target attribute so the
// baseline build still carries it.
// ---------------------------------------------------------------------------
namespace avx2 {
namespace {

#define FF_AVX2 __attribute__((target("avx2")))

FF_AVX2 void Fill(float* y, std::int64_t n, float v) {
  const __m256 vv = _mm256_set1_ps(v);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(y + i, vv);
  for (; i < n; ++i) y[i] = v;
}

FF_AVX2 void Axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

FF_AVX2 void Axpy4(const float* w, const float* x, float* y0, float* y1,
                   float* y2, float* y3, std::int64_t n) {
  const __m256 w0 = _mm256_set1_ps(w[0]), w1 = _mm256_set1_ps(w[1]);
  const __m256 w2 = _mm256_set1_ps(w[2]), w3 = _mm256_set1_ps(w[3]);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(
        y0 + i, _mm256_add_ps(_mm256_loadu_ps(y0 + i), _mm256_mul_ps(w0, v)));
    _mm256_storeu_ps(
        y1 + i, _mm256_add_ps(_mm256_loadu_ps(y1 + i), _mm256_mul_ps(w1, v)));
    _mm256_storeu_ps(
        y2 + i, _mm256_add_ps(_mm256_loadu_ps(y2 + i), _mm256_mul_ps(w2, v)));
    _mm256_storeu_ps(
        y3 + i, _mm256_add_ps(_mm256_loadu_ps(y3 + i), _mm256_mul_ps(w3, v)));
  }
  for (; i < n; ++i) {
    const float v = x[i];
    y0[i] += w[0] * v;
    y1[i] += w[1] * v;
    y2[i] += w[2] * v;
    y3[i] += w[3] * v;
  }
}

FF_AVX2 void AxpyRows(float a, const float* x, std::int64_t x_stride,
                      float* y, std::int64_t y_stride, std::int64_t rows,
                      std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* yr = y + r * y_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 vy = _mm256_loadu_ps(yr + i);
      _mm256_storeu_ps(
          yr + i, _mm256_add_ps(vy, _mm256_mul_ps(va, _mm256_loadu_ps(xr + i))));
    }
    for (; i < n; ++i) yr[i] += a * xr[i];
  }
}

FF_AVX2 void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
                       float* y0, float* y1, float* y2, float* y3,
                       std::int64_t y_stride, std::int64_t rows,
                       std::int64_t n) {
  const __m256 w0 = _mm256_set1_ps(w[0]), w1 = _mm256_set1_ps(w[1]);
  const __m256 w2 = _mm256_set1_ps(w[2]), w3 = _mm256_set1_ps(w[3]);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* r0 = y0 + r * y_stride;
    float* r1 = y1 + r * y_stride;
    float* r2 = y2 + r * y_stride;
    float* r3 = y3 + r * y_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(xr + i);
      _mm256_storeu_ps(
          r0 + i, _mm256_add_ps(_mm256_loadu_ps(r0 + i), _mm256_mul_ps(w0, v)));
      _mm256_storeu_ps(
          r1 + i, _mm256_add_ps(_mm256_loadu_ps(r1 + i), _mm256_mul_ps(w1, v)));
      _mm256_storeu_ps(
          r2 + i, _mm256_add_ps(_mm256_loadu_ps(r2 + i), _mm256_mul_ps(w2, v)));
      _mm256_storeu_ps(
          r3 + i, _mm256_add_ps(_mm256_loadu_ps(r3 + i), _mm256_mul_ps(w3, v)));
    }
    for (; i < n; ++i) {
      const float v = xr[i];
      r0[i] += w[0] * v;
      r1[i] += w[1] * v;
      r2[i] += w[2] * v;
      r3[i] += w[3] * v;
    }
  }
}

FF_AVX2 void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
                    std::int64_t w_stride, float* y0, float* y1, float* y2,
                    float* y3, std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  std::int64_t i = 0;
  // 4 output rows x 16 columns of accumulators live in registers across the
  // whole ic loop: 8 accumulators + 2 column vectors + broadcasts = 14 regs.
  for (; i + 16 <= n; i += 16) {
    __m256 a0l = _mm256_loadu_ps(y0 + i), a0h = _mm256_loadu_ps(y0 + i + 8);
    __m256 a1l = _mm256_loadu_ps(y1 + i), a1h = _mm256_loadu_ps(y1 + i + 8);
    __m256 a2l = _mm256_loadu_ps(y2 + i), a2h = _mm256_loadu_ps(y2 + i + 8);
    __m256 a3l = _mm256_loadu_ps(y3 + i), a3h = _mm256_loadu_ps(y3 + i + 8);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 vl = _mm256_loadu_ps(x[ic] + i);
      const __m256 vh = _mm256_loadu_ps(x[ic] + i + 8);
      __m256 wv = _mm256_set1_ps(w0[ic]);
      a0l = _mm256_add_ps(a0l, _mm256_mul_ps(wv, vl));
      a0h = _mm256_add_ps(a0h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w1[ic]);
      a1l = _mm256_add_ps(a1l, _mm256_mul_ps(wv, vl));
      a1h = _mm256_add_ps(a1h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w2[ic]);
      a2l = _mm256_add_ps(a2l, _mm256_mul_ps(wv, vl));
      a2h = _mm256_add_ps(a2h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w3[ic]);
      a3l = _mm256_add_ps(a3l, _mm256_mul_ps(wv, vl));
      a3h = _mm256_add_ps(a3h, _mm256_mul_ps(wv, vh));
    }
    _mm256_storeu_ps(y0 + i, a0l);
    _mm256_storeu_ps(y0 + i + 8, a0h);
    _mm256_storeu_ps(y1 + i, a1l);
    _mm256_storeu_ps(y1 + i + 8, a1h);
    _mm256_storeu_ps(y2 + i, a2l);
    _mm256_storeu_ps(y2 + i + 8, a2h);
    _mm256_storeu_ps(y3 + i, a3l);
    _mm256_storeu_ps(y3 + i + 8, a3h);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 a0 = _mm256_loadu_ps(y0 + i), a1 = _mm256_loadu_ps(y1 + i);
    __m256 a2 = _mm256_loadu_ps(y2 + i), a3 = _mm256_loadu_ps(y3 + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 v = _mm256_loadu_ps(x[ic] + i);
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(w0[ic]), v));
      a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(w1[ic]), v));
      a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(w2[ic]), v));
      a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(w3[ic]), v));
    }
    _mm256_storeu_ps(y0 + i, a0);
    _mm256_storeu_ps(y1 + i, a1);
    _mm256_storeu_ps(y2 + i, a2);
    _mm256_storeu_ps(y3 + i, a3);
  }
  for (; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

FF_AVX2 void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
                    float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 al = _mm256_loadu_ps(y + i);
    __m256 ah = _mm256_loadu_ps(y + i + 8);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 wv = _mm256_set1_ps(w[ic]);
      al = _mm256_add_ps(al, _mm256_mul_ps(wv, _mm256_loadu_ps(x[ic] + i)));
      ah = _mm256_add_ps(ah,
                         _mm256_mul_ps(wv, _mm256_loadu_ps(x[ic] + i + 8)));
    }
    _mm256_storeu_ps(y + i, al);
    _mm256_storeu_ps(y + i + 8, ah);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 a = _mm256_loadu_ps(y + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      a = _mm256_add_ps(
          a, _mm256_mul_ps(_mm256_set1_ps(w[ic]), _mm256_loadu_ps(x[ic] + i)));
    }
    _mm256_storeu_ps(y + i, a);
  }
  for (; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

FF_AVX2 double Dot(const float* a, const float* b, std::int64_t n) {
  // acc_lo carries lanes 0-3, acc_hi lanes 4-7 of the pinned scheme.
  __m256d acc_lo = _mm256_setzero_pd(), acc_hi = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(alo, blo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(ahi, bhi));
  }
  alignas(32) double s[8];
  _mm256_store_pd(s + 0, acc_lo);
  _mm256_store_pd(s + 4, acc_hi);
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

FF_AVX2 void Relu(const float* x, float* y, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

FF_AVX2 void Relu6(const float* x, float* y, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 six = _mm256_set1_ps(6.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x + i), zero), six));
  }
  for (; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

FF_AVX2 std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                            std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t sad =
      static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

FF_AVX2 std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                               const std::uint8_t* b, std::int64_t stride_b) {
  // Two 16-byte rows per 256-bit SAD.
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 2) {
    const __m256i va = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(a + (y + 1) * stride_a)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + y * stride_a)));
    const __m256i vb = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + (y + 1) * stride_b)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + y * stride_b)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

FF_AVX2 void QAxpyRows(std::int32_t w, const std::uint8_t* x,
                       std::int64_t x_stride, std::int32_t* acc,
                       std::int64_t acc_stride, std::int64_t rows,
                       std::int64_t n) {
  const __m256i wv = _mm256_set1_epi16(static_cast<short>(w));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m128i xb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xr + i));
      // |w * x| <= 127*255 = 32385, so the s16 product is exact.
      const __m256i p = _mm256_mullo_epi16(_mm256_cvtepu8_epi16(xb), wv);
      const __m256i plo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p));
      const __m256i phi =
          _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p, 1));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(ar + i),
          _mm256_add_epi32(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(ar + i)),
                           plo));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(ar + i + 8),
          _mm256_add_epi32(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(ar + i + 8)),
                           phi));
    }
    for (; i < n; ++i) ar[i] += w * xr[i];
  }
}

// maddubs (u8*s8 pair products saturated to s16) + madd-by-ones (exact pair
// sums per pixel) — the hardware form of the pinned reduction rule.
FF_AVX2 inline __m256i QQuadMadd(__m256i u, __m256i wq, __m256i ones) {
  return _mm256_madd_epi16(_mm256_maddubs_epi16(u, wq), ones);
}

// Transposes four 32-pixel channel rows into per-pixel channel quads.
// u_k lane0 holds pixels 4k..4k+3, lane1 pixels 16+4k..16+4k+3; the
// accumulator permutation below matches that layout.
#define FF_Q_TRANSPOSE4(base)                                             \
  const __m256i r0 = _mm256_loadu_si256(                                  \
      reinterpret_cast<const __m256i*>(x[(base)] + i));                   \
  const __m256i r1 = _mm256_loadu_si256(                                  \
      reinterpret_cast<const __m256i*>(x[(base) + 1] + i));               \
  const __m256i r2 = _mm256_loadu_si256(                                  \
      reinterpret_cast<const __m256i*>(x[(base) + 2] + i));               \
  const __m256i r3 = _mm256_loadu_si256(                                  \
      reinterpret_cast<const __m256i*>(x[(base) + 3] + i));               \
  const __m256i t0 = _mm256_unpacklo_epi8(r0, r1);                        \
  const __m256i t1 = _mm256_unpackhi_epi8(r0, r1);                        \
  const __m256i t2 = _mm256_unpacklo_epi8(r2, r3);                        \
  const __m256i t3 = _mm256_unpackhi_epi8(r2, r3);                        \
  const __m256i u0 = _mm256_unpacklo_epi16(t0, t2);                       \
  const __m256i u1 = _mm256_unpackhi_epi16(t0, t2);                       \
  const __m256i u2 = _mm256_unpacklo_epi16(t1, t3);                       \
  const __m256i u3 = _mm256_unpackhi_epi16(t1, t3)

FF_AVX2 void QPwAcc1(const std::uint8_t* const* x, std::int64_t n_ic,
                     const std::int8_t* w, std::int32_t* acc,
                     std::int64_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i y0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i y1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 8));
    const __m256i y2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 16));
    const __m256i y3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 24));
    // Accumulators in transpose-group order: aA = px[0-3 | 16-19], etc.
    __m256i aA = _mm256_permute2x128_si256(y0, y2, 0x20);
    __m256i aB = _mm256_permute2x128_si256(y0, y2, 0x31);
    __m256i aC = _mm256_permute2x128_si256(y1, y3, 0x20);
    __m256i aD = _mm256_permute2x128_si256(y1, y3, 0x31);
    std::int64_t ic = 0;
    for (; ic + 4 <= n_ic; ic += 4) {
      FF_Q_TRANSPOSE4(ic);
      const __m256i wq = _mm256_set1_epi32(qdetail::QuadBits(w + ic));
      aA = _mm256_add_epi32(aA, QQuadMadd(u0, wq, ones));
      aB = _mm256_add_epi32(aB, QQuadMadd(u1, wq, ones));
      aC = _mm256_add_epi32(aC, QQuadMadd(u2, wq, ones));
      aD = _mm256_add_epi32(aD, QQuadMadd(u3, wq, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_permute2x128_si256(aA, aB, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 8),
                        _mm256_permute2x128_si256(aC, aD, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 16),
                        _mm256_permute2x128_si256(aA, aB, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 24),
                        _mm256_permute2x128_si256(aC, aD, 0x31));
    if (ic < n_ic) {
      for (std::int64_t p = 0; p < 32; ++p) {
        acc[i + p] += qdetail::QPwPixel(x, ic, n_ic, w, i + p);
      }
    }
  }
  for (; i < n; ++i) acc[i] += qdetail::QPwPixel(x, 0, n_ic, w, i);
}

FF_AVX2 void QPwAcc2(const std::uint8_t* const* x, std::int64_t n_ic,
                     const std::int8_t* w0, const std::int8_t* w1,
                     std::int32_t* acc0, std::int32_t* acc1, std::int64_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i y00 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i));
    const __m256i y01 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 8));
    const __m256i y02 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 16));
    const __m256i y03 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 24));
    __m256i aA0 = _mm256_permute2x128_si256(y00, y02, 0x20);
    __m256i aB0 = _mm256_permute2x128_si256(y00, y02, 0x31);
    __m256i aC0 = _mm256_permute2x128_si256(y01, y03, 0x20);
    __m256i aD0 = _mm256_permute2x128_si256(y01, y03, 0x31);
    const __m256i y10 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i));
    const __m256i y11 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 8));
    const __m256i y12 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 16));
    const __m256i y13 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 24));
    __m256i aA1 = _mm256_permute2x128_si256(y10, y12, 0x20);
    __m256i aB1 = _mm256_permute2x128_si256(y10, y12, 0x31);
    __m256i aC1 = _mm256_permute2x128_si256(y11, y13, 0x20);
    __m256i aD1 = _mm256_permute2x128_si256(y11, y13, 0x31);
    std::int64_t ic = 0;
    for (; ic + 4 <= n_ic; ic += 4) {
      FF_Q_TRANSPOSE4(ic);
      const __m256i wq0 = _mm256_set1_epi32(qdetail::QuadBits(w0 + ic));
      const __m256i wq1 = _mm256_set1_epi32(qdetail::QuadBits(w1 + ic));
      aA0 = _mm256_add_epi32(aA0, QQuadMadd(u0, wq0, ones));
      aB0 = _mm256_add_epi32(aB0, QQuadMadd(u1, wq0, ones));
      aC0 = _mm256_add_epi32(aC0, QQuadMadd(u2, wq0, ones));
      aD0 = _mm256_add_epi32(aD0, QQuadMadd(u3, wq0, ones));
      aA1 = _mm256_add_epi32(aA1, QQuadMadd(u0, wq1, ones));
      aB1 = _mm256_add_epi32(aB1, QQuadMadd(u1, wq1, ones));
      aC1 = _mm256_add_epi32(aC1, QQuadMadd(u2, wq1, ones));
      aD1 = _mm256_add_epi32(aD1, QQuadMadd(u3, wq1, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i),
                        _mm256_permute2x128_si256(aA0, aB0, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 8),
                        _mm256_permute2x128_si256(aC0, aD0, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 16),
                        _mm256_permute2x128_si256(aA0, aB0, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 24),
                        _mm256_permute2x128_si256(aC0, aD0, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i),
                        _mm256_permute2x128_si256(aA1, aB1, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 8),
                        _mm256_permute2x128_si256(aC1, aD1, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 16),
                        _mm256_permute2x128_si256(aA1, aB1, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 24),
                        _mm256_permute2x128_si256(aC1, aD1, 0x31));
    if (ic < n_ic) {
      for (std::int64_t p = 0; p < 32; ++p) {
        acc0[i + p] += qdetail::QPwPixel(x, ic, n_ic, w0, i + p);
        acc1[i + p] += qdetail::QPwPixel(x, ic, n_ic, w1, i + p);
      }
    }
  }
  for (; i < n; ++i) {
    acc0[i] += qdetail::QPwPixel(x, 0, n_ic, w0, i);
    acc1[i] += qdetail::QPwPixel(x, 0, n_ic, w1, i);
  }
}

FF_AVX2 void QPwPack(const std::uint8_t* const* x, std::int64_t n_ic,
                     std::uint8_t* out, std::int64_t n) {
  const std::int64_t quads = n_ic / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    std::uint8_t* oq = out + q * 4 * n;
    std::int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
      FF_Q_TRANSPOSE4(4 * q);
      // Store in sequential pixel order: u0/u1 lane0 = px 0-7, u2/u3 lane0
      // = px 8-15, the lane1 halves px 16-31.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(oq + 4 * i),
                          _mm256_permute2x128_si256(u0, u1, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(oq + 4 * i + 32),
                          _mm256_permute2x128_si256(u2, u3, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(oq + 4 * i + 64),
                          _mm256_permute2x128_si256(u0, u1, 0x31));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(oq + 4 * i + 96),
                          _mm256_permute2x128_si256(u2, u3, 0x31));
    }
    for (; i < n; ++i) {
      oq[4 * i] = x[4 * q][i];
      oq[4 * i + 1] = x[4 * q + 1][i];
      oq[4 * i + 2] = x[4 * q + 2][i];
      oq[4 * i + 3] = x[4 * q + 3][i];
    }
  }
  if (4 * quads < n_ic) {
    std::uint8_t* oq = out + quads * 4 * n;
    for (std::int64_t j = 0; j < 4; ++j) {
      const std::int64_t ic = 4 * quads + j;
      if (ic < n_ic) {
        const std::uint8_t* xp = x[ic];
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = xp[i];
      } else {
        for (std::int64_t i = 0; i < n; ++i) oq[4 * i + j] = 0;
      }
    }
  }
}

FF_AVX2 void QPwAcc1P(const std::uint8_t* packed, std::int64_t n_ic,
                      const std::int8_t* w, std::int32_t* acc,
                      std::int64_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  const std::int64_t full = n_ic / 4;
  std::int8_t wtail[4] = {0, 0, 0, 0};
  const std::int64_t quads = (n_ic + 3) / 4;
  if (quads > full) qdetail::QuadW(w, full, n_ic, wtail);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 8));
    __m256i a2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 16));
    __m256i a3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 24));
    for (std::int64_t q = 0; q < quads; ++q) {
      const std::uint8_t* p = packed + q * 4 * n + 4 * i;
      const __m256i wq = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w + 4 * q) : qdetail::QuadBits(wtail));
      // Packed bytes are already per-pixel channel quads in pixel order, so
      // maddubs+madd lands 8 sequential s32 sums per register — no shuffles.
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
      const __m256i v2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 64));
      const __m256i v3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 96));
      a0 = _mm256_add_epi32(a0, QQuadMadd(v0, wq, ones));
      a1 = _mm256_add_epi32(a1, QQuadMadd(v1, wq, ones));
      a2 = _mm256_add_epi32(a2, QQuadMadd(v2, wq, ones));
      a3 = _mm256_add_epi32(a3, QQuadMadd(v3, wq, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 8), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 16), a2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 24), a3);
  }
  if (i < n) {
    // Masked final block: each pixel's channel quad is exactly one 4-byte
    // lane, so vpmaskmovd gives a per-pixel predicate. Masked lanes are
    // never read or written, so the live lanes compute the same pinned-rule
    // sums as the full-width path (bitwise identity preserved) and a scalar
    // per-pixel tail -- which walks the quad stride 4 bytes at a time and
    // dominated whole layers when the plane was not a multiple of 32 --
    // is never needed.
    const __m256i lane =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const int rem = static_cast<int>(n - i);
    const __m256i m0 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem), lane);
    const __m256i m1 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 8), lane);
    const __m256i m2 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 16), lane);
    const __m256i m3 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 24), lane);
    __m256i a0 = _mm256_maskload_epi32(acc + i, m0);
    __m256i a1 = _mm256_maskload_epi32(acc + i + 8, m1);
    __m256i a2 = _mm256_maskload_epi32(acc + i + 16, m2);
    __m256i a3 = _mm256_maskload_epi32(acc + i + 24, m3);
    for (std::int64_t q = 0; q < quads; ++q) {
      const int* p =
          reinterpret_cast<const int*>(packed + q * 4 * n + 4 * i);
      const __m256i wq = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w + 4 * q) : qdetail::QuadBits(wtail));
      a0 = _mm256_add_epi32(
          a0, QQuadMadd(_mm256_maskload_epi32(p, m0), wq, ones));
      a1 = _mm256_add_epi32(
          a1, QQuadMadd(_mm256_maskload_epi32(p + 8, m1), wq, ones));
      a2 = _mm256_add_epi32(
          a2, QQuadMadd(_mm256_maskload_epi32(p + 16, m2), wq, ones));
      a3 = _mm256_add_epi32(
          a3, QQuadMadd(_mm256_maskload_epi32(p + 24, m3), wq, ones));
    }
    _mm256_maskstore_epi32(acc + i, m0, a0);
    _mm256_maskstore_epi32(acc + i + 8, m1, a1);
    _mm256_maskstore_epi32(acc + i + 16, m2, a2);
    _mm256_maskstore_epi32(acc + i + 24, m3, a3);
  }
}

FF_AVX2 void QPwAcc2P(const std::uint8_t* packed, std::int64_t n_ic,
                      const std::int8_t* w0, const std::int8_t* w1,
                      std::int32_t* acc0, std::int32_t* acc1,
                      std::int64_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  const std::int64_t full = n_ic / 4;
  std::int8_t wtail0[4] = {0, 0, 0, 0};
  std::int8_t wtail1[4] = {0, 0, 0, 0};
  const std::int64_t quads = (n_ic + 3) / 4;
  if (quads > full) {
    qdetail::QuadW(w0, full, n_ic, wtail0);
    qdetail::QuadW(w1, full, n_ic, wtail1);
  }
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i a00 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i));
    __m256i a01 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 8));
    __m256i a02 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 16));
    __m256i a03 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i + 24));
    __m256i a10 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i));
    __m256i a11 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 8));
    __m256i a12 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 16));
    __m256i a13 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i + 24));
    for (std::int64_t q = 0; q < quads; ++q) {
      const std::uint8_t* p = packed + q * 4 * n + 4 * i;
      const __m256i wq0 = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w0 + 4 * q)
                   : qdetail::QuadBits(wtail0));
      const __m256i wq1 = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w1 + 4 * q)
                   : qdetail::QuadBits(wtail1));
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
      const __m256i v2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 64));
      const __m256i v3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 96));
      a00 = _mm256_add_epi32(a00, QQuadMadd(v0, wq0, ones));
      a01 = _mm256_add_epi32(a01, QQuadMadd(v1, wq0, ones));
      a02 = _mm256_add_epi32(a02, QQuadMadd(v2, wq0, ones));
      a03 = _mm256_add_epi32(a03, QQuadMadd(v3, wq0, ones));
      a10 = _mm256_add_epi32(a10, QQuadMadd(v0, wq1, ones));
      a11 = _mm256_add_epi32(a11, QQuadMadd(v1, wq1, ones));
      a12 = _mm256_add_epi32(a12, QQuadMadd(v2, wq1, ones));
      a13 = _mm256_add_epi32(a13, QQuadMadd(v3, wq1, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i), a00);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 8), a01);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 16), a02);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc0 + i + 24), a03);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i), a10);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 8), a11);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 16), a12);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc1 + i + 24), a13);
  }
  if (i < n) {
    // Masked final block; see QPwAcc1P for why this preserves bitwise
    // identity and why a scalar tail is a throughput cliff.
    const __m256i lane =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const int rem = static_cast<int>(n - i);
    const __m256i m0 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem), lane);
    const __m256i m1 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 8), lane);
    const __m256i m2 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 16), lane);
    const __m256i m3 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 24), lane);
    __m256i a00 = _mm256_maskload_epi32(acc0 + i, m0);
    __m256i a01 = _mm256_maskload_epi32(acc0 + i + 8, m1);
    __m256i a02 = _mm256_maskload_epi32(acc0 + i + 16, m2);
    __m256i a03 = _mm256_maskload_epi32(acc0 + i + 24, m3);
    __m256i a10 = _mm256_maskload_epi32(acc1 + i, m0);
    __m256i a11 = _mm256_maskload_epi32(acc1 + i + 8, m1);
    __m256i a12 = _mm256_maskload_epi32(acc1 + i + 16, m2);
    __m256i a13 = _mm256_maskload_epi32(acc1 + i + 24, m3);
    for (std::int64_t q = 0; q < quads; ++q) {
      const int* p =
          reinterpret_cast<const int*>(packed + q * 4 * n + 4 * i);
      const __m256i wq0 = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w0 + 4 * q)
                   : qdetail::QuadBits(wtail0));
      const __m256i wq1 = _mm256_set1_epi32(
          q < full ? qdetail::QuadBits(w1 + 4 * q)
                   : qdetail::QuadBits(wtail1));
      const __m256i v0 = _mm256_maskload_epi32(p, m0);
      const __m256i v1 = _mm256_maskload_epi32(p + 8, m1);
      const __m256i v2 = _mm256_maskload_epi32(p + 16, m2);
      const __m256i v3 = _mm256_maskload_epi32(p + 24, m3);
      a00 = _mm256_add_epi32(a00, QQuadMadd(v0, wq0, ones));
      a01 = _mm256_add_epi32(a01, QQuadMadd(v1, wq0, ones));
      a02 = _mm256_add_epi32(a02, QQuadMadd(v2, wq0, ones));
      a03 = _mm256_add_epi32(a03, QQuadMadd(v3, wq0, ones));
      a10 = _mm256_add_epi32(a10, QQuadMadd(v0, wq1, ones));
      a11 = _mm256_add_epi32(a11, QQuadMadd(v1, wq1, ones));
      a12 = _mm256_add_epi32(a12, QQuadMadd(v2, wq1, ones));
      a13 = _mm256_add_epi32(a13, QQuadMadd(v3, wq1, ones));
    }
    _mm256_maskstore_epi32(acc0 + i, m0, a00);
    _mm256_maskstore_epi32(acc0 + i + 8, m1, a01);
    _mm256_maskstore_epi32(acc0 + i + 16, m2, a02);
    _mm256_maskstore_epi32(acc0 + i + 24, m3, a03);
    _mm256_maskstore_epi32(acc1 + i, m0, a10);
    _mm256_maskstore_epi32(acc1 + i + 8, m1, a11);
    _mm256_maskstore_epi32(acc1 + i + 16, m2, a12);
    _mm256_maskstore_epi32(acc1 + i + 24, m3, a13);
  }
}

FF_AVX2 void QAxpyRowsS2(std::int32_t w, const std::uint8_t* x,
                         std::int64_t x_stride, std::int32_t* acc,
                         std::int64_t acc_stride, std::int64_t rows,
                         std::int64_t n) {
  const __m256i wv = _mm256_set1_epi16(static_cast<short>(w));
  const __m256i mask = _mm256_set1_epi16(0x00FF);
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint8_t* xr = x + r * x_stride;
    std::int32_t* ar = acc + r * acc_stride;
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xr + 2 * i));
      // Even bytes zero-extended to u16; |w * x| <= 32385 so the s16
      // product is exact.
      const __m256i p = _mm256_mullo_epi16(_mm256_and_si256(b, mask), wv);
      const __m256i lo =
          _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p));
      const __m256i hi =
          _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p, 1));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(ar + i),
          _mm256_add_epi32(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(ar + i)),
                           lo));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(ar + i + 8),
          _mm256_add_epi32(
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(ar + i + 8)),
              hi));
    }
    for (; i < n; ++i) ar[i] += w * xr[2 * i];
  }
}

#undef FF_Q_TRANSPOSE4

FF_AVX2 std::int32_t QDot(const std::uint8_t* x, const std::int8_t* w,
                          std::int64_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i accv = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    accv = _mm256_add_epi32(accv, QQuadMadd(xv, wv, ones));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accv);
  std::int32_t a = 0;
  for (int j = 0; j < 8; ++j) a += lanes[j];
  return a + qdetail::QDotTail(x + i, w + i, n - i);
}

FF_AVX2 void QRequant(const std::int32_t* acc, float scale, float bias,
                      std::uint8_t* y, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vb = _mm256_set1_ps(bias);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 v255 = _mm256_set1_ps(255.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)));
    t = _mm256_add_ps(_mm256_mul_ps(t, vs), vb);
    t = _mm256_max_ps(t, zero);  // NaN -> 0, like relu
    t = _mm256_min_ps(t, v255);
    const __m256i q = _mm256_cvtps_epi32(t);  // round-to-nearest-even
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(y + i), p8);
  }
  for (; i < n; ++i) y[i] = qdetail::QRequantOne(acc[i], scale, bias);
}

FF_AVX2 void QDequant(const std::uint8_t* x, float scale, std::int32_t zp,
                      float* y, std::int64_t n) {
  const __m256i vzp = _mm256_set1_epi32(zp);
  const __m256 vs = _mm256_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i xb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256i x32 = _mm256_cvtepu8_epi32(xb);
    _mm256_storeu_ps(
        y + i,
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(x32, vzp)), vs));
  }
  for (; i < n; ++i) y[i] = qdetail::QDequantOne(x[i], scale, zp);
}

FF_AVX2 void QQuant(const float* x, float inv_scale, float zp,
                    std::uint8_t* y, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 vzp = _mm256_set1_ps(zp);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 v255 = _mm256_set1_ps(255.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vs), vzp);
    t = _mm256_max_ps(t, zero);
    t = _mm256_min_ps(t, v255);
    const __m256i q = _mm256_cvtps_epi32(t);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(y + i), p8);
  }
  for (; i < n; ++i) y[i] = qdetail::QQuantOne(x[i], inv_scale, zp);
}

#undef FF_AVX2

constexpr OpTable kTable = {Fill,     Axpy,      Axpy4,    AxpyRows,
                            Axpy4Rows, PwAcc4,   PwAcc1,   Dot,
                            Relu,     Relu6,     SadU8,    Sad16x16,
                            QAxpyRows, QPwAcc1,  QPwAcc2,  QPwPack,
                            QPwAcc1P, QPwAcc2P,  QAxpyRowsS2, QDot,
                            QRequant, QDequant,  QQuant};

}  // namespace
}  // namespace avx2

#endif  // FF_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

// Highest ISA the env cap allows; unset means "no cap". An unrecognized
// value fails loudly — FF_SIMD exists precisely to control parity checks
// and baseline benchmarks, where a typo silently running AVX2 would
// invalidate the measurement.
Isa EnvCap() {
  const char* env = std::getenv("FF_SIMD");
  if (env == nullptr) return Isa::kAvx2;
  const std::string s(env);
  if (s == "scalar") return Isa::kScalar;
  if (s == "sse2") return Isa::kSse2;
  FF_CHECK_MSG(s == "avx2", "FF_SIMD=" << s
                                       << " is not one of scalar/sse2/avx2");
  return Isa::kAvx2;
}

Isa DetectIsa() {
  const Isa cap = EnvCap();
#if FF_KERNELS_X86
  if (cap >= Isa::kAvx2 && __builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (cap >= Isa::kSse2) return Isa::kSse2;  // x86-64 baseline
#else
  (void)cap;
#endif
  return Isa::kScalar;
}

struct Dispatch {
  const OpTable* table;
  Isa isa;
};

// Thread-safe: the first caller — which may be a thread-pool worker inside
// a fanned-out layer — resolves the ISA under the magic-static guard.
// SetActiveIsaForTest mutates this afterwards; tests are single-threaded.
Dispatch& GlobalDispatch() {
  static Dispatch d = [] {
    const Isa isa = DetectIsa();
    return Dispatch{TableFor(isa), isa};
  }();
  return d;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "?";
}

const OpTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar::Table();
#if FF_KERNELS_X86
    case Isa::kSse2:
      return &sse2::kTable;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") ? &avx2::kTable : nullptr;
#else
    case Isa::kSse2:
    case Isa::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

Isa ActiveIsa() { return GlobalDispatch().isa; }

const OpTable& Active() { return *GlobalDispatch().table; }

Isa SetActiveIsaForTest(Isa isa) {
  const OpTable* table = TableFor(isa);
  FF_CHECK_MSG(table != nullptr,
               "ISA " << IsaName(isa) << " not supported on this host");
  Dispatch& d = GlobalDispatch();
  const Isa prev = d.isa;
  d.table = table;
  d.isa = isa;
  return prev;
}

std::int64_t ParallelFlopThreshold() {
  static const std::int64_t threshold =
      util::EnvInt("FF_PARALLEL_FLOPS", 1 << 17);
  return threshold;
}

}  // namespace ff::nn::kernels
