// SIMD micro-kernels. See kernels.hpp for the bitwise-parity contract.
//
// This file is compiled with -ffp-contract=off (src/CMakeLists.txt) so that
// even under -march=x86-64-v3 the compiler cannot fuse the scalar reference
// path's multiply+add into an FMA — the SIMD paths deliberately use separate
// mul/add, and parity is the whole point.

#include "nn/kernels.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.hpp"
#include "util/env.hpp"

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FF_KERNELS_X86 1
#include <immintrin.h>
#else
#define FF_KERNELS_X86 0
#endif

namespace ff::nn::kernels {

namespace scalar {
namespace {

void Fill(float* y, std::int64_t n, float v) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = v;
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Axpy4(const float* w, const float* x, float* y0, float* y1, float* y2,
           float* y3, std::int64_t n) {
  const float w0 = w[0], w1 = w[1], w2 = w[2], w3 = w[3];
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    y0[i] += w0 * v;
    y1[i] += w1 * v;
    y2[i] += w2 * v;
    y3[i] += w3 * v;
  }
}

void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
              std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    Axpy(a, x + r * x_stride, y + r * y_stride, n);
  }
}

void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
               float* y0, float* y1, float* y2, float* y3,
               std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    Axpy4(w, x + r * x_stride, y0 + r * y_stride, y1 + r * y_stride,
          y2 + r * y_stride, y3 + r * y_stride, n);
  }
}

void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
            std::int64_t w_stride, float* y0, float* y1, float* y2, float* y3,
            std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  for (std::int64_t i = 0; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
            float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

// The pinned reduction scheme: lane j accumulates indices i ≡ j (mod 8).
double Dot(const float* a, const float* b, std::int64_t n) {
  double s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int j = 0; j < 8; ++j) {
      s[j] += static_cast<double>(a[i + j]) * static_cast<double>(b[i + j]);
    }
  }
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

void Relu(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void Relu6(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                    std::int64_t n) {
  std::uint32_t sad = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                       const std::uint8_t* b, std::int64_t stride_b) {
  std::uint32_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    sad += SadU8(a + y * stride_a, b + y * stride_b, 16);
  }
  return sad;
}

constexpr OpTable kTable = {Fill,   Axpy,   Axpy4,  AxpyRows, Axpy4Rows,
                            PwAcc4, PwAcc1, Dot,    Relu,     Relu6,
                            SadU8,  Sad16x16};

}  // namespace

const OpTable& Table() { return kTable; }

}  // namespace scalar

#if FF_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 — x86-64 baseline, always available on this architecture.
// ---------------------------------------------------------------------------
namespace sse2 {
namespace {

void Fill(float* y, std::int64_t n, float v) {
  const __m128 vv = _mm_set1_ps(v);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) _mm_storeu_ps(y + i, vv);
  for (; i < n; ++i) y[i] = v;
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vy = _mm_loadu_ps(y + i);
    _mm_storeu_ps(y + i, _mm_add_ps(vy, _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void Axpy4(const float* w, const float* x, float* y0, float* y1, float* y2,
           float* y3, std::int64_t n) {
  const __m128 w0 = _mm_set1_ps(w[0]), w1 = _mm_set1_ps(w[1]);
  const __m128 w2 = _mm_set1_ps(w[2]), w3 = _mm_set1_ps(w[3]);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(x + i);
    _mm_storeu_ps(y0 + i, _mm_add_ps(_mm_loadu_ps(y0 + i), _mm_mul_ps(w0, v)));
    _mm_storeu_ps(y1 + i, _mm_add_ps(_mm_loadu_ps(y1 + i), _mm_mul_ps(w1, v)));
    _mm_storeu_ps(y2 + i, _mm_add_ps(_mm_loadu_ps(y2 + i), _mm_mul_ps(w2, v)));
    _mm_storeu_ps(y3 + i, _mm_add_ps(_mm_loadu_ps(y3 + i), _mm_mul_ps(w3, v)));
  }
  for (; i < n; ++i) {
    const float v = x[i];
    y0[i] += w[0] * v;
    y1[i] += w[1] * v;
    y2[i] += w[2] * v;
    y3[i] += w[3] * v;
  }
}

void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
              std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  const __m128 va = _mm_set1_ps(a);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* yr = y + r * y_stride;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128 vy = _mm_loadu_ps(yr + i);
      _mm_storeu_ps(yr + i,
                    _mm_add_ps(vy, _mm_mul_ps(va, _mm_loadu_ps(xr + i))));
    }
    for (; i < n; ++i) yr[i] += a * xr[i];
  }
}

void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
               float* y0, float* y1, float* y2, float* y3,
               std::int64_t y_stride, std::int64_t rows, std::int64_t n) {
  const __m128 w0 = _mm_set1_ps(w[0]), w1 = _mm_set1_ps(w[1]);
  const __m128 w2 = _mm_set1_ps(w[2]), w3 = _mm_set1_ps(w[3]);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* r0 = y0 + r * y_stride;
    float* r1 = y1 + r * y_stride;
    float* r2 = y2 + r * y_stride;
    float* r3 = y3 + r * y_stride;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128 v = _mm_loadu_ps(xr + i);
      _mm_storeu_ps(r0 + i,
                    _mm_add_ps(_mm_loadu_ps(r0 + i), _mm_mul_ps(w0, v)));
      _mm_storeu_ps(r1 + i,
                    _mm_add_ps(_mm_loadu_ps(r1 + i), _mm_mul_ps(w1, v)));
      _mm_storeu_ps(r2 + i,
                    _mm_add_ps(_mm_loadu_ps(r2 + i), _mm_mul_ps(w2, v)));
      _mm_storeu_ps(r3 + i,
                    _mm_add_ps(_mm_loadu_ps(r3 + i), _mm_mul_ps(w3, v)));
    }
    for (; i < n; ++i) {
      const float v = xr[i];
      r0[i] += w[0] * v;
      r1[i] += w[1] * v;
      r2[i] += w[2] * v;
      r3[i] += w[3] * v;
    }
  }
}

void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
            std::int64_t w_stride, float* y0, float* y1, float* y2, float* y3,
            std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 a0 = _mm_loadu_ps(y0 + i), a1 = _mm_loadu_ps(y1 + i);
    __m128 a2 = _mm_loadu_ps(y2 + i), a3 = _mm_loadu_ps(y3 + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m128 v = _mm_loadu_ps(x[ic] + i);
      a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_set1_ps(w0[ic]), v));
      a1 = _mm_add_ps(a1, _mm_mul_ps(_mm_set1_ps(w1[ic]), v));
      a2 = _mm_add_ps(a2, _mm_mul_ps(_mm_set1_ps(w2[ic]), v));
      a3 = _mm_add_ps(a3, _mm_mul_ps(_mm_set1_ps(w3[ic]), v));
    }
    _mm_storeu_ps(y0 + i, a0);
    _mm_storeu_ps(y1 + i, a1);
    _mm_storeu_ps(y2 + i, a2);
    _mm_storeu_ps(y3 + i, a3);
  }
  for (; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
            float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 a = _mm_loadu_ps(y + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      a = _mm_add_ps(
          a, _mm_mul_ps(_mm_set1_ps(w[ic]), _mm_loadu_ps(x[ic] + i)));
    }
    _mm_storeu_ps(y + i, a);
  }
  for (; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

double Dot(const float* a, const float* b, std::int64_t n) {
  // Lanes (0,1), (2,3), (4,5), (6,7) of the pinned 8-lane scheme.
  __m128d s01 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
  __m128d s45 = _mm_setzero_pd(), s67 = _mm_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 alo = _mm_loadu_ps(a + i), ahi = _mm_loadu_ps(a + i + 4);
    const __m128 blo = _mm_loadu_ps(b + i), bhi = _mm_loadu_ps(b + i + 4);
    s01 = _mm_add_pd(s01, _mm_mul_pd(_mm_cvtps_pd(alo), _mm_cvtps_pd(blo)));
    s23 = _mm_add_pd(s23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(alo, alo)),
                                     _mm_cvtps_pd(_mm_movehl_ps(blo, blo))));
    s45 = _mm_add_pd(s45, _mm_mul_pd(_mm_cvtps_pd(ahi), _mm_cvtps_pd(bhi)));
    s67 = _mm_add_pd(s67, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(ahi, ahi)),
                                     _mm_cvtps_pd(_mm_movehl_ps(bhi, bhi))));
  }
  alignas(16) double s[8];
  _mm_store_pd(s + 0, s01);
  _mm_store_pd(s + 2, s23);
  _mm_store_pd(s + 4, s45);
  _mm_store_pd(s + 6, s67);
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

void Relu(const float* x, float* y, std::int64_t n) {
  const __m128 zero = _mm_setzero_ps();
  std::int64_t i = 0;
  // max(x, 0): maxps returns the second operand on NaN, so NaN -> 0,
  // matching the scalar `v > 0 ? v : 0`.
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_max_ps(_mm_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void Relu6(const float* x, float* y, std::int64_t n) {
  const __m128 zero = _mm_setzero_ps();
  const __m128 six = _mm_set1_ps(6.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i,
                  _mm_min_ps(_mm_max_ps(_mm_loadu_ps(x + i), zero), six));
  }
  for (; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                    std::int64_t n) {
  __m128i acc = _mm_setzero_si128();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
  }
  std::uint32_t sad = static_cast<std::uint32_t>(
      _mm_cvtsi128_si64(acc) + _mm_cvtsi128_si64(_mm_srli_si128(acc, 8)));
  for (; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                       const std::uint8_t* b, std::int64_t stride_b) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; ++y) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + y * stride_a));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + y * stride_b));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
  }
  return static_cast<std::uint32_t>(
      _mm_cvtsi128_si64(acc) + _mm_cvtsi128_si64(_mm_srli_si128(acc, 8)));
}

constexpr OpTable kTable = {Fill,   Axpy,   Axpy4,  AxpyRows, Axpy4Rows,
                            PwAcc4, PwAcc1, Dot,    Relu,     Relu6,
                            SadU8,  Sad16x16};

}  // namespace
}  // namespace sse2

// ---------------------------------------------------------------------------
// AVX2 — gated at runtime by CPUID; compiled via the target attribute so the
// baseline build still carries it.
// ---------------------------------------------------------------------------
namespace avx2 {
namespace {

#define FF_AVX2 __attribute__((target("avx2")))

FF_AVX2 void Fill(float* y, std::int64_t n, float v) {
  const __m256 vv = _mm256_set1_ps(v);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(y + i, vv);
  for (; i < n; ++i) y[i] = v;
}

FF_AVX2 void Axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

FF_AVX2 void Axpy4(const float* w, const float* x, float* y0, float* y1,
                   float* y2, float* y3, std::int64_t n) {
  const __m256 w0 = _mm256_set1_ps(w[0]), w1 = _mm256_set1_ps(w[1]);
  const __m256 w2 = _mm256_set1_ps(w[2]), w3 = _mm256_set1_ps(w[3]);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(
        y0 + i, _mm256_add_ps(_mm256_loadu_ps(y0 + i), _mm256_mul_ps(w0, v)));
    _mm256_storeu_ps(
        y1 + i, _mm256_add_ps(_mm256_loadu_ps(y1 + i), _mm256_mul_ps(w1, v)));
    _mm256_storeu_ps(
        y2 + i, _mm256_add_ps(_mm256_loadu_ps(y2 + i), _mm256_mul_ps(w2, v)));
    _mm256_storeu_ps(
        y3 + i, _mm256_add_ps(_mm256_loadu_ps(y3 + i), _mm256_mul_ps(w3, v)));
  }
  for (; i < n; ++i) {
    const float v = x[i];
    y0[i] += w[0] * v;
    y1[i] += w[1] * v;
    y2[i] += w[2] * v;
    y3[i] += w[3] * v;
  }
}

FF_AVX2 void AxpyRows(float a, const float* x, std::int64_t x_stride,
                      float* y, std::int64_t y_stride, std::int64_t rows,
                      std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* yr = y + r * y_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 vy = _mm256_loadu_ps(yr + i);
      _mm256_storeu_ps(
          yr + i, _mm256_add_ps(vy, _mm256_mul_ps(va, _mm256_loadu_ps(xr + i))));
    }
    for (; i < n; ++i) yr[i] += a * xr[i];
  }
}

FF_AVX2 void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
                       float* y0, float* y1, float* y2, float* y3,
                       std::int64_t y_stride, std::int64_t rows,
                       std::int64_t n) {
  const __m256 w0 = _mm256_set1_ps(w[0]), w1 = _mm256_set1_ps(w[1]);
  const __m256 w2 = _mm256_set1_ps(w[2]), w3 = _mm256_set1_ps(w[3]);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * x_stride;
    float* r0 = y0 + r * y_stride;
    float* r1 = y1 + r * y_stride;
    float* r2 = y2 + r * y_stride;
    float* r3 = y3 + r * y_stride;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(xr + i);
      _mm256_storeu_ps(
          r0 + i, _mm256_add_ps(_mm256_loadu_ps(r0 + i), _mm256_mul_ps(w0, v)));
      _mm256_storeu_ps(
          r1 + i, _mm256_add_ps(_mm256_loadu_ps(r1 + i), _mm256_mul_ps(w1, v)));
      _mm256_storeu_ps(
          r2 + i, _mm256_add_ps(_mm256_loadu_ps(r2 + i), _mm256_mul_ps(w2, v)));
      _mm256_storeu_ps(
          r3 + i, _mm256_add_ps(_mm256_loadu_ps(r3 + i), _mm256_mul_ps(w3, v)));
    }
    for (; i < n; ++i) {
      const float v = xr[i];
      r0[i] += w[0] * v;
      r1[i] += w[1] * v;
      r2[i] += w[2] * v;
      r3[i] += w[3] * v;
    }
  }
}

FF_AVX2 void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
                    std::int64_t w_stride, float* y0, float* y1, float* y2,
                    float* y3, std::int64_t n) {
  const float* w0 = w;
  const float* w1 = w + w_stride;
  const float* w2 = w + 2 * w_stride;
  const float* w3 = w + 3 * w_stride;
  std::int64_t i = 0;
  // 4 output rows x 16 columns of accumulators live in registers across the
  // whole ic loop: 8 accumulators + 2 column vectors + broadcasts = 14 regs.
  for (; i + 16 <= n; i += 16) {
    __m256 a0l = _mm256_loadu_ps(y0 + i), a0h = _mm256_loadu_ps(y0 + i + 8);
    __m256 a1l = _mm256_loadu_ps(y1 + i), a1h = _mm256_loadu_ps(y1 + i + 8);
    __m256 a2l = _mm256_loadu_ps(y2 + i), a2h = _mm256_loadu_ps(y2 + i + 8);
    __m256 a3l = _mm256_loadu_ps(y3 + i), a3h = _mm256_loadu_ps(y3 + i + 8);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 vl = _mm256_loadu_ps(x[ic] + i);
      const __m256 vh = _mm256_loadu_ps(x[ic] + i + 8);
      __m256 wv = _mm256_set1_ps(w0[ic]);
      a0l = _mm256_add_ps(a0l, _mm256_mul_ps(wv, vl));
      a0h = _mm256_add_ps(a0h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w1[ic]);
      a1l = _mm256_add_ps(a1l, _mm256_mul_ps(wv, vl));
      a1h = _mm256_add_ps(a1h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w2[ic]);
      a2l = _mm256_add_ps(a2l, _mm256_mul_ps(wv, vl));
      a2h = _mm256_add_ps(a2h, _mm256_mul_ps(wv, vh));
      wv = _mm256_set1_ps(w3[ic]);
      a3l = _mm256_add_ps(a3l, _mm256_mul_ps(wv, vl));
      a3h = _mm256_add_ps(a3h, _mm256_mul_ps(wv, vh));
    }
    _mm256_storeu_ps(y0 + i, a0l);
    _mm256_storeu_ps(y0 + i + 8, a0h);
    _mm256_storeu_ps(y1 + i, a1l);
    _mm256_storeu_ps(y1 + i + 8, a1h);
    _mm256_storeu_ps(y2 + i, a2l);
    _mm256_storeu_ps(y2 + i + 8, a2h);
    _mm256_storeu_ps(y3 + i, a3l);
    _mm256_storeu_ps(y3 + i + 8, a3h);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 a0 = _mm256_loadu_ps(y0 + i), a1 = _mm256_loadu_ps(y1 + i);
    __m256 a2 = _mm256_loadu_ps(y2 + i), a3 = _mm256_loadu_ps(y3 + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 v = _mm256_loadu_ps(x[ic] + i);
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(w0[ic]), v));
      a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(w1[ic]), v));
      a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(w2[ic]), v));
      a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(w3[ic]), v));
    }
    _mm256_storeu_ps(y0 + i, a0);
    _mm256_storeu_ps(y1 + i, a1);
    _mm256_storeu_ps(y2 + i, a2);
    _mm256_storeu_ps(y3 + i, a3);
  }
  for (; i < n; ++i) {
    float a0 = y0[i], a1 = y1[i], a2 = y2[i], a3 = y3[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const float v = x[ic][i];
      a0 += w0[ic] * v;
      a1 += w1[ic] * v;
      a2 += w2[ic] * v;
      a3 += w3[ic] * v;
    }
    y0[i] = a0;
    y1[i] = a1;
    y2[i] = a2;
    y3[i] = a3;
  }
}

FF_AVX2 void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
                    float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 al = _mm256_loadu_ps(y + i);
    __m256 ah = _mm256_loadu_ps(y + i + 8);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      const __m256 wv = _mm256_set1_ps(w[ic]);
      al = _mm256_add_ps(al, _mm256_mul_ps(wv, _mm256_loadu_ps(x[ic] + i)));
      ah = _mm256_add_ps(ah,
                         _mm256_mul_ps(wv, _mm256_loadu_ps(x[ic] + i + 8)));
    }
    _mm256_storeu_ps(y + i, al);
    _mm256_storeu_ps(y + i + 8, ah);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 a = _mm256_loadu_ps(y + i);
    for (std::int64_t ic = 0; ic < n_ic; ++ic) {
      a = _mm256_add_ps(
          a, _mm256_mul_ps(_mm256_set1_ps(w[ic]), _mm256_loadu_ps(x[ic] + i)));
    }
    _mm256_storeu_ps(y + i, a);
  }
  for (; i < n; ++i) {
    float a = y[i];
    for (std::int64_t ic = 0; ic < n_ic; ++ic) a += w[ic] * x[ic][i];
    y[i] = a;
  }
}

FF_AVX2 double Dot(const float* a, const float* b, std::int64_t n) {
  // acc_lo carries lanes 0-3, acc_hi lanes 4-7 of the pinned scheme.
  __m256d acc_lo = _mm256_setzero_pd(), acc_hi = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(alo, blo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(ahi, bhi));
  }
  alignas(32) double s[8];
  _mm256_store_pd(s + 0, acc_lo);
  _mm256_store_pd(s + 4, acc_hi);
  for (int j = 0; i < n; ++i, ++j) {
    s[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

FF_AVX2 void Relu(const float* x, float* y, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

FF_AVX2 void Relu6(const float* x, float* y, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 six = _mm256_set1_ps(6.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x + i), zero), six));
  }
  for (; i < n; ++i) {
    const float r = x[i] > 0.0f ? x[i] : 0.0f;
    y[i] = r < 6.0f ? r : 6.0f;
  }
}

FF_AVX2 std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                            std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t sad =
      static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sad += static_cast<std::uint32_t>(
        a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sad;
}

FF_AVX2 std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                               const std::uint8_t* b, std::int64_t stride_b) {
  // Two 16-byte rows per 256-bit SAD.
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 2) {
    const __m256i va = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(a + (y + 1) * stride_a)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + y * stride_a)));
    const __m256i vb = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + (y + 1) * stride_b)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + y * stride_b)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

#undef FF_AVX2

constexpr OpTable kTable = {Fill,   Axpy,   Axpy4,  AxpyRows, Axpy4Rows,
                            PwAcc4, PwAcc1, Dot,    Relu,     Relu6,
                            SadU8,  Sad16x16};

}  // namespace
}  // namespace avx2

#endif  // FF_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

// Highest ISA the env cap allows; unset means "no cap". An unrecognized
// value fails loudly — FF_SIMD exists precisely to control parity checks
// and baseline benchmarks, where a typo silently running AVX2 would
// invalidate the measurement.
Isa EnvCap() {
  const char* env = std::getenv("FF_SIMD");
  if (env == nullptr) return Isa::kAvx2;
  const std::string s(env);
  if (s == "scalar") return Isa::kScalar;
  if (s == "sse2") return Isa::kSse2;
  FF_CHECK_MSG(s == "avx2", "FF_SIMD=" << s
                                       << " is not one of scalar/sse2/avx2");
  return Isa::kAvx2;
}

Isa DetectIsa() {
  const Isa cap = EnvCap();
#if FF_KERNELS_X86
  if (cap >= Isa::kAvx2 && __builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (cap >= Isa::kSse2) return Isa::kSse2;  // x86-64 baseline
#else
  (void)cap;
#endif
  return Isa::kScalar;
}

struct Dispatch {
  const OpTable* table;
  Isa isa;
};

// Thread-safe: the first caller — which may be a thread-pool worker inside
// a fanned-out layer — resolves the ISA under the magic-static guard.
// SetActiveIsaForTest mutates this afterwards; tests are single-threaded.
Dispatch& GlobalDispatch() {
  static Dispatch d = [] {
    const Isa isa = DetectIsa();
    return Dispatch{TableFor(isa), isa};
  }();
  return d;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "?";
}

const OpTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar::Table();
#if FF_KERNELS_X86
    case Isa::kSse2:
      return &sse2::kTable;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") ? &avx2::kTable : nullptr;
#else
    case Isa::kSse2:
    case Isa::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

Isa ActiveIsa() { return GlobalDispatch().isa; }

const OpTable& Active() { return *GlobalDispatch().table; }

Isa SetActiveIsaForTest(Isa isa) {
  const OpTable* table = TableFor(isa);
  FF_CHECK_MSG(table != nullptr,
               "ISA " << IsaName(isa) << " not supported on this host");
  Dispatch& d = GlobalDispatch();
  const Isa prev = d.isa;
  d.table = table;
  d.isa = isa;
  return prev;
}

std::int64_t ParallelFlopThreshold() {
  static const std::int64_t threshold =
      util::EnvInt("FF_PARALLEL_FLOPS", 1 << 17);
  return threshold;
}

}  // namespace ff::nn::kernels
