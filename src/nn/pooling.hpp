// Pooling layers: windowed max pool (discrete classifiers), global average
// pool (MobileNet tail), and global max pool over the logit grid (the "Max"
// operator of the full-frame object detector MC, paper Fig. 2a).
#pragma once

#include "nn/layer.hpp"

namespace ff::nn {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::string name, std::int64_t k, std::int64_t stride);

  Shape OutputShape(const Shape& in) const override;
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::uint64_t Macs(const Shape&) const override { return 0; }

 private:
  std::int64_t k_, stride_;
  Shape saved_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

// Reduces each channel plane to its mean: (n, c, 1, 1).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  Shape OutputShape(const Shape& in) const override {
    return Shape{in.n, in.c, 1, 1};
  }
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::uint64_t Macs(const Shape&) const override { return 0; }

 private:
  Shape saved_in_shape_;
};

// Reduces each channel plane to its max: (n, c, 1, 1). Backward routes the
// gradient to the argmax element (ties broken toward the first).
class GlobalMaxPool : public Layer {
 public:
  explicit GlobalMaxPool(std::string name) : Layer(std::move(name)) {}
  Shape OutputShape(const Shape& in) const override {
    return Shape{in.n, in.c, 1, 1};
  }
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::uint64_t Macs(const Shape&) const override { return 0; }

 private:
  Shape saved_in_shape_;
  std::vector<std::int64_t> argmax_;
};

}  // namespace ff::nn
