// Binary (de)serialization of network weights.
//
// Format: "FFNW" magic, u32 version, u32 blob count, then per blob:
// u32 name length, name bytes, u64 float count, raw little-endian floats.
// Loading matches blobs by name and checks sizes, so a file trained by one
// binary is loadable by any other that builds the same architecture (this is
// how paper §3.2's "developer supplies the network weights" deployment step
// is modeled).
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace ff::nn {

void SaveWeights(Sequential& net, const std::string& path);

// Throws CheckError on magic/size/name mismatch.
void LoadWeights(Sequential& net, const std::string& path);

// In-memory round trip (used by tests and by the deployment model).
std::string SerializeWeights(Sequential& net);
void DeserializeWeights(Sequential& net, const std::string& bytes);

}  // namespace ff::nn
