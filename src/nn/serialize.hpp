// Binary (de)serialization of network weights.
//
// Float format: "FFNW" magic, u32 version, u32 blob count, then per blob:
// u32 name length, name bytes, u64 float count, raw little-endian floats.
// Loading matches blobs by name and checks sizes, so a file trained by one
// binary is loadable by any other that builds the same architecture (this is
// how paper §3.2's "developer supplies the network weights" deployment step
// is modeled).
//
// Quantized format: "FFNQ" magic, u32 version, input ActQuant (f32 scale,
// i32 zero point), u32 op count, then per op: u32 name length, name bytes,
// u8 kind, output ActQuant, u64 s8 weight count + raw bytes, u64 out_c +
// out_c requant scales + out_c requant biases (f32). Deserialization
// validates every field against Quantizer::Plan(net) — names, kinds, and
// sizes must match the architecture the caller built — so a truncated or
// hostile byte stream fails a loud FF_CHECK instead of loading garbage.
// Loading a quantized file through the float entry points (or vice versa)
// is also a loud FF_CHECK, not a silent magic mismatch.
#pragma once

#include <string>

#include "nn/quantize.hpp"
#include "nn/sequential.hpp"

namespace ff::nn {

void SaveWeights(Sequential& net, const std::string& path);

// Throws CheckError on magic/size/name mismatch.
void LoadWeights(Sequential& net, const std::string& path);

// In-memory round trip (used by tests and by the deployment model).
std::string SerializeWeights(Sequential& net);
void DeserializeWeights(Sequential& net, const std::string& bytes);

// What kind of checkpoint a byte stream claims to be (by magic alone; no
// validation). Anything that is neither magic is kUnknown.
enum class CheckpointKind { kFloat, kQuantized, kUnknown };
CheckpointKind SniffCheckpoint(const std::string& bytes);

// Quantized round trip. Serialization captures the program's weights and
// requant chain; deserialization rebuilds a QuantizedProgram for `net`,
// FF_CHECKing every untrusted field against Quantizer::Plan(net).
std::string SerializeQuantized(const QuantizedProgram& prog);
QuantizedProgram DeserializeQuantized(Sequential& net,
                                      const std::string& bytes);

}  // namespace ff::nn
