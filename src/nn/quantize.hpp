// Post-training int8 quantization of a Sequential prefix (ROADMAP: quantized
// inference path; the edge-analytics systems surveyed in PAPERS.md lean on
// int8 to hit real-time on CPU-class edge hardware).
//
// Scheme:
//  * activations are u8: float x ≈ (v - zero_point) * scale. Post-ReLU
//    tensors are non-negative, so zero_point = 0 and scale = absmax/255;
//    signed tensors (the [-1, 1] network input, activation-less conv
//    outputs) use zero_point = 128 and scale = absmax/127. Scales come from
//    a calibration batch (Quantizer::Quantize), not from weights.
//  * weights are s8 with per-output-channel symmetric scales
//    (scale = absmax/127, round-to-nearest-even, clamped to ±127).
//  * accumulation is s32 under the pinned maddubs pair-saturation rule (see
//    kernels.hpp); between layers a single requantize-with-fused-ReLU maps
//    acc back to u8: y = clamp_u8(rne(acc * rscale[oc] + rbias[oc])), where
//    rscale folds the three scales and rbias folds the float bias, the
//    output zero point, and the input-zero-point correction
//    (-rscale * zp_in * sum(w_s8)). With zp_out = 0 the u8 clamp at 0 IS
//    the fused ReLU; ReLU6's upper clip is absorbed by calibration (the
//    post-act absmax is <= 6, so 255 maps to it).
//  * KxK ops pad with the input zero point (the u8 encoding of float 0), so
//    borders need no per-position correction.
//  * every tap dequantizes back to float32, so TensorView consumers (MCs,
//    xcam signatures) see an ordinary dense Tensor and are untouched.
//
// A QuantizedProgram covers the longest quantizable prefix of the source
// net: runs of Conv2D / DepthwiseConv2D / FullyConnected, each optionally
// fused with an immediately following ReLU/ReLU6 Activation (the fused op
// takes the activation layer's name, so taps keep resolving). The first
// unsupported layer (pooling, sigmoid, WindowPack, ...) ends the prefix;
// resume_index() tells the caller where to re-enter the float net.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "nn/sequential.hpp"

namespace ff::nn {

// Quantization parameters of one activation tensor: byte v represents
// float (v - zero_point) * scale.
struct ActQuant {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

// One fused quantized op: conv / depthwise / dense plus its folded
// activation and requant chain.
struct QuantOp {
  enum class Kind : std::uint8_t { kConv = 0, kDepthwise = 1, kDense = 2 };

  Kind kind = Kind::kConv;
  // Tap-visible name: the Activation layer's name when fused, else the
  // compute layer's own.
  std::string name;

  // Geometry, copied from the float layer. kDense reads in_c as the
  // flattened input dimension and out_c as the unit count.
  std::int64_t in_c = 0, out_c = 0, k = 1, stride = 1;
  Padding pad = Padding::kSameCeil;

  ActQuant out_q;
  std::vector<std::int8_t> w;  // same element layout as the float layer
  std::vector<float> rscale;   // [out_c] requant scale
  std::vector<float> rbias;    // [out_c] requant bias (bias + zp folded)

  // Weight element count implied by the geometry.
  std::size_t WeightCount() const;
};

// A compiled int8 inference program over a Sequential prefix.
class QuantizedProgram {
 public:
  std::size_t n_ops() const { return ops_.size(); }
  const QuantOp& op(std::size_t i) const { return ops_[i]; }
  const ActQuant& input_quant() const { return in_q_; }

  // Index (in the source Sequential) of the first layer the program does
  // NOT cover; a caller with a float tail resumes ForwardRange here.
  std::size_t resume_index() const { return resume_index_; }

  // True when some op carries this tap-visible name.
  bool Covers(const std::string& name) const;

  // Runs the whole program and dequantizes the final op's output.
  Tensor Forward(const TensorView& in) const;

  // Mirrors Sequential::ForwardWithTaps: runs up to the deepest requested
  // tap and dequantizes each tapped activation. Every tap must be covered.
  std::map<std::string, Tensor> ForwardWithTaps(
      const TensorView& in, const std::set<std::string>& taps) const;

 private:
  friend class Quantizer;
  friend QuantizedProgram DeserializeQuantized(Sequential&,
                                               const std::string&);

  std::vector<QuantOp> ops_;
  ActQuant in_q_;
  std::size_t resume_index_ = 0;
};

class Quantizer {
 public:
  // Structure-only pass: the fused-op skeleton (geometry + names, weight /
  // requant vectors sized but zeroed) for the longest quantizable prefix of
  // `net`. The quantized deserializer validates untrusted bytes against
  // this. FF_CHECKs that at least the first layer is quantizable.
  static QuantizedProgram Plan(Sequential& net);

  // Full post-training quantization: Plan, then per-channel weight
  // quantization plus activation scales calibrated by running `net` in
  // float over the recorded calibration batch `calib`.
  static QuantizedProgram Quantize(Sequential& net, const TensorView& calib);
};

}  // namespace ff::nn
