// 2-D convolutions: generic KxK, depthwise, and a fast pointwise (1x1) path.
//
// Padding modes:
//  * kValid    — no padding; out = (in - k)/s + 1.
//  * kSameCeil — TensorFlow "SAME"; out = ceil(in/s).
//  * kSameFloor— out = floor(in/s). MobileNet uses this mode so that the
//    feature-map dimensions match the ones quoted in paper Fig. 2
//    (1920x1080 -> conv4_2/sep 67x120, conv5_6/sep 33x60).
#pragma once

#include "nn/layer.hpp"

namespace ff::nn {

enum class Padding { kValid, kSameCeil, kSameFloor };

// Output length and begin-padding for one spatial axis.
struct AxisGeometry {
  std::int64_t out = 0;
  std::int64_t pad_begin = 0;
};
AxisGeometry ComputeAxisGeometry(std::int64_t in, std::int64_t k,
                                 std::int64_t s, Padding pad);

// Standard convolution; weight layout [out_c][in_c][k][k], plus bias[out_c].
class Conv2D : public Layer {
 public:
  Conv2D(std::string name, std::int64_t in_c, std::int64_t out_c,
         std::int64_t k, std::int64_t stride, Padding pad);

  Shape OutputShape(const Shape& in) const override;
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<ParamView> Params() override;
  std::uint64_t Macs(const Shape& in) const override;

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }
  Padding padding() const { return pad_; }

  std::vector<float>& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  std::int64_t in_c_, out_c_, k_, stride_;
  Padding pad_;
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor saved_in_;  // retained when training
};

// Depthwise convolution (depth multiplier 1); weight layout [c][k][k].
class DepthwiseConv2D : public Layer {
 public:
  DepthwiseConv2D(std::string name, std::int64_t channels, std::int64_t k,
                  std::int64_t stride, Padding pad);

  Shape OutputShape(const Shape& in) const override;
  Tensor Forward(const TensorView& in) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<ParamView> Params() override;
  std::uint64_t Macs(const Shape& in) const override;

  std::int64_t channels() const { return c_; }
  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }
  Padding padding() const { return pad_; }

  std::vector<float>& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  std::int64_t c_, k_, stride_;
  Padding pad_;
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor saved_in_;
};

}  // namespace ff::nn
