// Sequential network: a named chain of layers with activation taps.
//
// The feature extractor uses ForwardWithTaps() to collect intermediate
// activations (paper §3.1) and stops at the deepest tap it needs, so running
// microclassifiers fed from conv4_2/sep never pays for conv5/conv6.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "nn/layer.hpp"

namespace ff::nn {

class Sequential {
 public:
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  const std::string& name() const { return name_; }

  // Appends a layer; returns a reference for inline tweaks. Layer names must
  // be unique within the network.
  Layer& Add(LayerPtr layer);

  std::size_t n_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  // Index of the named layer; checks existence.
  std::size_t IndexOf(const std::string& layer_name) const;
  bool Contains(const std::string& layer_name) const;

  // Full forward pass.
  Tensor Forward(const TensorView& in);

  // Forward pass that stops after `last_layer` (inclusive).
  Tensor ForwardTo(const TensorView& in, const std::string& last_layer);

  // Forward through layers [begin, end) only. The windowed microclassifier
  // uses this to run its shared per-frame 1x1 conv once per frame and the
  // trunk once per window (paper §3.3.3's buffer-reuse optimization).
  Tensor ForwardRange(const TensorView& in, std::size_t begin, std::size_t end);

  // Forward collecting the outputs of every layer named in `taps`, stopping
  // at the deepest one. Returns the map tap-name -> activation.
  std::map<std::string, Tensor> ForwardWithTaps(const TensorView& in,
                                                const std::set<std::string>& taps);

  // Backpropagates through all layers (most recent Forward must have been in
  // training mode); returns gradient w.r.t. the network input.
  Tensor Backward(const Tensor& grad_out);

  std::vector<ParamView> Params();
  void ZeroGrad();
  void SetTraining(bool training);

  // Output shape after the whole chain (or up to `last_layer`).
  Shape OutputShape(const Shape& in) const;
  Shape OutputShapeAt(const Shape& in, const std::string& last_layer) const;

  // Total multiply-adds per image for the whole chain (or a prefix).
  std::uint64_t Macs(const Shape& in) const;
  std::uint64_t MacsTo(const Shape& in, const std::string& last_layer) const;

  // Per-layer (name, macs, output shape) trace — used by the Fig. 2 bench.
  struct LayerCost {
    std::string name;
    std::uint64_t macs;
    Shape out_shape;
  };
  std::vector<LayerCost> CostTrace(const Shape& in) const;

  // Number of parameters (floats) across all layers.
  std::int64_t ParamCount() const;

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace ff::nn
