// Portable SIMD micro-kernel library — the arithmetic core under every hot
// path: the base DNN's convolutions (axpy/axpy4), the MCs' fully-connected
// heads (dot), activations (relu/relu6), bias broadcast (fill), and the
// codec's motion search (u8 SAD).
//
// Contract: every kernel has one *reference* implementation (namespace
// `scalar`) and zero or more SIMD implementations (SSE2, AVX2) selected at
// startup by compile-time support ∩ runtime CPUID ∩ the FF_SIMD env cap.
// All implementations of a kernel are BITWISE-IDENTICAL for every input:
//
//  * axpy/axpy4/fill/relu/relu6 are elementwise IEEE single ops, so lane
//    width cannot change results. The SIMD paths use separate multiply and
//    add (never FMA), matching the scalar fallback, and kernels.cpp is
//    compiled with -ffp-contract=off so the compiler cannot contract the
//    scalar reference into FMA either (see src/CMakeLists.txt).
//  * dot is a reduction, so its accumulation order is pinned by spec:
//    8 double-precision partial sums by index mod 8, combined as
//    ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)). Scalar and SIMD implement the
//    same scheme, so the result is bitwise-reproducible across ISAs.
//  * sad_u8/sad16x16 are integer sums — exact under any association.
//
// nn_kernels_test pins the parity for every kernel on every ISA the host
// supports, at awkward lengths (0, 1, vector-width±1, unaligned, strided).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.hpp"

namespace ff::nn::kernels {

// Instruction sets in increasing capability order. kScalar is always
// available; on x86-64 kSse2 is too (baseline); kAvx2 needs CPUID.
enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* IsaName(Isa isa);

// One dispatch table; `Active()` resolves once per process.
struct OpTable {
  // y[i] = v
  void (*fill)(float* y, std::int64_t n, float v);
  // y[i] += a * x[i]
  void (*axpy)(float a, const float* x, float* y, std::int64_t n);
  // yk[i] += w[k] * x[i] for k in 0..3 — the register-blocked row update
  // used by the KxK conv path: one load of x feeds four output-channel rows.
  void (*axpy4)(const float* w, const float* x, float* y0, float* y1,
                float* y2, float* y3, std::int64_t n);
  // Fused row loops for the KxK and depthwise paths: apply the axpy to
  // `rows` rows whose x/y bases advance by the given strides. One dispatch
  // per (channel, tap) instead of one per output row, with the weight
  // broadcasts hoisted out of the row loop. Row r is bitwise-identical to
  // axpy(a, x + r*x_stride, y + r*y_stride, n).
  void (*axpy_rows)(float a, const float* x, std::int64_t x_stride, float* y,
                    std::int64_t y_stride, std::int64_t rows, std::int64_t n);
  void (*axpy4_rows)(const float* w, const float* x, std::int64_t x_stride,
                     float* y0, float* y1, float* y2, float* y3,
                     std::int64_t y_stride, std::int64_t rows, std::int64_t n);
  // The pointwise-conv workhorse: yk[i] += sum_ic w[k*w_stride + ic] *
  // x[ic][i], accumulated in registers across the whole ic loop (one y
  // read/write per element instead of one per input channel). Per element
  // the fold over ic runs in index order with one rounding per step — the
  // same sequence every implementation performs, so results are bitwise
  // identical across ISAs and tile widths.
  void (*pw_acc4)(const float* const* x, std::int64_t n_ic, const float* w,
                  std::int64_t w_stride, float* y0, float* y1, float* y2,
                  float* y3, std::int64_t n);
  // Single-row variant for the output-channel remainder (w indexed w[ic]).
  void (*pw_acc1)(const float* const* x, std::int64_t n_ic, const float* w,
                  float* y, std::int64_t n);
  // Returns sum_i a[i]*b[i] under the pinned 8-lane double scheme above.
  double (*dot)(const float* a, const float* b, std::int64_t n);
  // y[i] = max(x[i], 0)   (NaN -> 0, matching `v > 0 ? v : 0`)
  void (*relu)(const float* x, float* y, std::int64_t n);
  // y[i] = min(max(x[i], 0), 6)
  void (*relu6)(const float* x, float* y, std::int64_t n);
  // Sum of absolute differences of two u8 runs.
  std::uint32_t (*sad_u8)(const std::uint8_t* a, const std::uint8_t* b,
                          std::int64_t n);
  // SAD of a 16x16 u8 block with independent row strides — the motion
  // search's inner loop, dispatched once per candidate vector.
  std::uint32_t (*sad16x16)(const std::uint8_t* a, std::int64_t stride_a,
                            const std::uint8_t* b, std::int64_t stride_b);
};

// The table for `isa`, or nullptr when this build/CPU cannot run it.
// Tests iterate supported ISAs and pin each against `scalar::Table()`.
const OpTable* TableFor(Isa isa);

// Highest supported ISA, capped by the FF_SIMD env var ("scalar", "sse2",
// "avx2"); resolved once on first use.
Isa ActiveIsa();

// The active table (never nullptr).
const OpTable& Active();

// Test hook: force the active table to `isa` (must be supported); returns
// the previously active ISA so tests can restore it.
Isa SetActiveIsaForTest(Isa isa);

// Reference implementations — always available, used as the parity oracle
// and as the fallback on non-x86 hosts.
namespace scalar {
const OpTable& Table();
}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched convenience wrappers (what the layers call).
// ---------------------------------------------------------------------------

inline void Fill(float* y, std::int64_t n, float v) { Active().fill(y, n, v); }
inline void Axpy(float a, const float* x, float* y, std::int64_t n) {
  Active().axpy(a, x, y, n);
}
inline void Axpy4(const float* w, const float* x, float* y0, float* y1,
                  float* y2, float* y3, std::int64_t n) {
  Active().axpy4(w, x, y0, y1, y2, y3, n);
}
inline void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
                     std::int64_t y_stride, std::int64_t rows,
                     std::int64_t n) {
  Active().axpy_rows(a, x, x_stride, y, y_stride, rows, n);
}
inline void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
                      float* y0, float* y1, float* y2, float* y3,
                      std::int64_t y_stride, std::int64_t rows,
                      std::int64_t n) {
  Active().axpy4_rows(w, x, x_stride, y0, y1, y2, y3, y_stride, rows, n);
}
inline void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
                   std::int64_t w_stride, float* y0, float* y1, float* y2,
                   float* y3, std::int64_t n) {
  Active().pw_acc4(x, n_ic, w, w_stride, y0, y1, y2, y3, n);
}
inline void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
                   float* y, std::int64_t n) {
  Active().pw_acc1(x, n_ic, w, y, n);
}
inline double Dot(const float* a, const float* b, std::int64_t n) {
  return Active().dot(a, b, n);
}
inline void Relu(const float* x, float* y, std::int64_t n) {
  Active().relu(x, y, n);
}
inline void Relu6(const float* x, float* y, std::int64_t n) {
  Active().relu6(x, y, n);
}
inline std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                           std::int64_t n) {
  return Active().sad_u8(a, b, n);
}
inline std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                              const std::uint8_t* b, std::int64_t stride_b) {
  return Active().sad16x16(a, stride_a, b, stride_b);
}

// ---------------------------------------------------------------------------
// Thread-pool dispatch policy, shared by conv / depthwise / pooling / dense.
// ---------------------------------------------------------------------------

// Minimum flops before a layer hands work to util::GlobalPool(); below it,
// the dispatch overhead outweighs the parallelism. Overridable via the
// FF_PARALLEL_FLOPS env var for multicore benchmarking (read once).
std::int64_t ParallelFlopThreshold();

inline bool WorthParallel(std::int64_t flops) {
  return flops > ParallelFlopThreshold();
}

// Runs `block(n, c0, c1)` over the flattened (batch × channel) plane index
// space, fanned out across util::GlobalPool() when `total_flops` clears the
// shared threshold — the one dispatch policy conv, depthwise, and the
// pooling layers all follow. Batched inputs widen the fan-out to
// n × channels instead of channels alone.
template <typename Block>
void ForEachPlaneBlock(std::int64_t batch, std::int64_t channels,
                       std::int64_t total_flops, const Block& block) {
  if (WorthParallel(total_flops)) {
    util::GlobalPool().ParallelForRange(
        static_cast<std::size_t>(batch * channels),
        [&](std::size_t b, std::size_t e) {
          for (auto idx = static_cast<std::int64_t>(b);
               idx < static_cast<std::int64_t>(e);) {
            const std::int64_t n = idx / channels;
            const std::int64_t c0 = idx % channels;
            const std::int64_t c1 =
                std::min(channels, c0 + (static_cast<std::int64_t>(e) - idx));
            block(n, c0, c1);
            idx += c1 - c0;
          }
        });
  } else {
    for (std::int64_t n = 0; n < batch; ++n) block(n, 0, channels);
  }
}

// Per-plane convenience wrapper: `fn(n, c)` for every plane.
template <typename PlaneFn>
void ForEachPlane(std::int64_t batch, std::int64_t channels,
                  std::int64_t total_flops, const PlaneFn& fn) {
  ForEachPlaneBlock(batch, channels, total_flops,
                    [&](std::int64_t n, std::int64_t c0, std::int64_t c1) {
                      for (std::int64_t c = c0; c < c1; ++c) fn(n, c);
                    });
}

}  // namespace ff::nn::kernels
