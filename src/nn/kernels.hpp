// Portable SIMD micro-kernel library — the arithmetic core under every hot
// path: the base DNN's convolutions (axpy/axpy4), the MCs' fully-connected
// heads (dot), activations (relu/relu6), bias broadcast (fill), and the
// codec's motion search (u8 SAD).
//
// Contract: every kernel has one *reference* implementation (namespace
// `scalar`) and zero or more SIMD implementations (SSE2, AVX2) selected at
// startup by compile-time support ∩ runtime CPUID ∩ the FF_SIMD env cap.
// All implementations of a kernel are BITWISE-IDENTICAL for every input:
//
//  * axpy/axpy4/fill/relu/relu6 are elementwise IEEE single ops, so lane
//    width cannot change results. The SIMD paths use separate multiply and
//    add (never FMA), matching the scalar fallback, and kernels.cpp is
//    compiled with -ffp-contract=off so the compiler cannot contract the
//    scalar reference into FMA either (see src/CMakeLists.txt).
//  * dot is a reduction, so its accumulation order is pinned by spec:
//    8 double-precision partial sums by index mod 8, combined as
//    ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)). Scalar and SIMD implement the
//    same scheme, so the result is bitwise-reproducible across ISAs.
//  * sad_u8/sad16x16 are integer sums — exact under any association.
//  * the q* kernels (int8 inference path) are integer except for the
//    requant/quant/dequant boundaries. Their accumulation rule is pinned by
//    spec to the AVX2 maddubs+madd sequence: u8*s8 products are summed in
//    PAIRS with signed-16 saturation, pair sums add exactly in s32 (see the
//    per-kernel comments for which indices pair up). The float boundaries
//    use separate mul/add plus round-to-nearest-even (cvtps semantics), so
//    every ISA — including the scalar reference — produces identical bytes.
//
// nn_kernels_test pins the parity for every kernel on every ISA the host
// supports, at awkward lengths (0, 1, vector-width±1, unaligned, strided),
// including int8 saturation edge cases (w=±127 against x=255).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.hpp"

namespace ff::nn::kernels {

// Instruction sets in increasing capability order. kScalar is always
// available; on x86-64 kSse2 is too (baseline); kAvx2 needs CPUID.
enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* IsaName(Isa isa);

// One dispatch table; `Active()` resolves once per process.
struct OpTable {
  // y[i] = v
  void (*fill)(float* y, std::int64_t n, float v);
  // y[i] += a * x[i]
  void (*axpy)(float a, const float* x, float* y, std::int64_t n);
  // yk[i] += w[k] * x[i] for k in 0..3 — the register-blocked row update
  // used by the KxK conv path: one load of x feeds four output-channel rows.
  void (*axpy4)(const float* w, const float* x, float* y0, float* y1,
                float* y2, float* y3, std::int64_t n);
  // Fused row loops for the KxK and depthwise paths: apply the axpy to
  // `rows` rows whose x/y bases advance by the given strides. One dispatch
  // per (channel, tap) instead of one per output row, with the weight
  // broadcasts hoisted out of the row loop. Row r is bitwise-identical to
  // axpy(a, x + r*x_stride, y + r*y_stride, n).
  void (*axpy_rows)(float a, const float* x, std::int64_t x_stride, float* y,
                    std::int64_t y_stride, std::int64_t rows, std::int64_t n);
  void (*axpy4_rows)(const float* w, const float* x, std::int64_t x_stride,
                     float* y0, float* y1, float* y2, float* y3,
                     std::int64_t y_stride, std::int64_t rows, std::int64_t n);
  // The pointwise-conv workhorse: yk[i] += sum_ic w[k*w_stride + ic] *
  // x[ic][i], accumulated in registers across the whole ic loop (one y
  // read/write per element instead of one per input channel). Per element
  // the fold over ic runs in index order with one rounding per step — the
  // same sequence every implementation performs, so results are bitwise
  // identical across ISAs and tile widths.
  void (*pw_acc4)(const float* const* x, std::int64_t n_ic, const float* w,
                  std::int64_t w_stride, float* y0, float* y1, float* y2,
                  float* y3, std::int64_t n);
  // Single-row variant for the output-channel remainder (w indexed w[ic]).
  void (*pw_acc1)(const float* const* x, std::int64_t n_ic, const float* w,
                  float* y, std::int64_t n);
  // Returns sum_i a[i]*b[i] under the pinned 8-lane double scheme above.
  double (*dot)(const float* a, const float* b, std::int64_t n);
  // y[i] = max(x[i], 0)   (NaN -> 0, matching `v > 0 ? v : 0`)
  void (*relu)(const float* x, float* y, std::int64_t n);
  // y[i] = min(max(x[i], 0), 6)
  void (*relu6)(const float* x, float* y, std::int64_t n);
  // Sum of absolute differences of two u8 runs.
  std::uint32_t (*sad_u8)(const std::uint8_t* a, const std::uint8_t* b,
                          std::int64_t n);
  // SAD of a 16x16 u8 block with independent row strides — the motion
  // search's inner loop, dispatched once per candidate vector.
  std::uint32_t (*sad16x16)(const std::uint8_t* a, std::int64_t stride_a,
                            const std::uint8_t* b, std::int64_t stride_b);

  // -------------------------------------------------------------------------
  // int8 inference path (see quantize.hpp). Activations are u8, weights s8,
  // accumulation s32. The qpw/qdot reduction rule is pinned by spec to the
  // maddubs sequence: products at indices (2j, 2j+1) form a pair whose sum
  // saturates to signed 16 bits; pair sums then add EXACTLY in s32 (an odd
  // tail product stands alone — a single u8*s8 product is at most ±32385 and
  // can never saturate). Every ISA implements this same rule, so results are
  // bitwise-identical.
  // -------------------------------------------------------------------------

  // acc[r*acc_stride + i] += w * x[r*x_stride + i] — exact (unpaired) s32
  // accumulation, used by the KxK / depthwise taps where each dispatch
  // carries a single weight. `w` is an s8 value passed widened.
  void (*qaxpy_rows)(std::int32_t w, const std::uint8_t* x,
                     std::int64_t x_stride, std::int32_t* acc,
                     std::int64_t acc_stride, std::int64_t rows,
                     std::int64_t n);
  // Pointwise conv: acc[i] += sum_ic w[ic] * x[ic][i] under the pinned
  // pair-saturation rule (pairs are (2j, 2j+1) over ic). Accumulators stay
  // in registers across the whole ic loop.
  void (*qpw_acc1)(const std::uint8_t* const* x, std::int64_t n_ic,
                   const std::int8_t* w, std::int32_t* acc, std::int64_t n);
  // Two output channels sharing one activation transpose; row k is
  // bitwise-identical to qpw_acc1(x, n_ic, wk, acck, n).
  void (*qpw_acc2)(const std::uint8_t* const* x, std::int64_t n_ic,
                   const std::int8_t* w0, const std::int8_t* w1,
                   std::int32_t* acc0, std::int32_t* acc1, std::int64_t n);
  // Packs channel planes into the interleaved channel-quad layout the
  // packed pointwise kernels stream: out[q*4*n + 4*i + j] = x[4q+j][i],
  // zero-filled for the padding channels of a partial final quad (q runs to
  // ceil(n_ic/4)). Pure data movement — the output is byte-identical on
  // every ISA; the SIMD versions only do it faster.
  void (*qpw_pack)(const std::uint8_t* const* x, std::int64_t n_ic,
                   std::uint8_t* out, std::int64_t n);
  // Packed-layout pointwise: bitwise-identical to qpw_acc1/qpw_acc2 on the
  // same channels, but reading the qpw_pack layout. Packing once per image
  // removes the per-output-channel byte transpose that dominates qpw_acc2
  // at trunk-sized planes (a zero-padded pair saturates to the lone
  // product, so the padded quad is exact under the pinned pair rule).
  void (*qpw_acc1p)(const std::uint8_t* packed, std::int64_t n_ic,
                    const std::int8_t* w, std::int32_t* acc, std::int64_t n);
  void (*qpw_acc2p)(const std::uint8_t* packed, std::int64_t n_ic,
                    const std::int8_t* w0, const std::int8_t* w1,
                    std::int32_t* acc0, std::int32_t* acc1, std::int64_t n);
  // Stride-2 qaxpy_rows: acc[r*acc_stride + i] += w * x[r*x_stride + 2*i],
  // exact s32 accumulation (the stride-2 KxK/depthwise taps). The SIMD
  // paths read the odd in-between bytes of each 2n-1-byte span, so callers
  // must keep a few bytes of slack mapped past the last row.
  void (*qaxpy_rows_s2)(std::int32_t w, const std::uint8_t* x,
                        std::int64_t x_stride, std::int32_t* acc,
                        std::int64_t acc_stride, std::int64_t rows,
                        std::int64_t n);
  // Dense: returns sum_i w[i] * x[i] under the same pair-saturation rule.
  std::int32_t (*qdot)(const std::uint8_t* x, const std::int8_t* w,
                       std::int64_t n);
  // Requantize s32 accumulators back to u8 with a fused ReLU/clamp:
  // y[i] = u8(rne(clamp(float(acc[i]) * scale + bias, 0, 255))), with
  // separate mul and add (no FMA), NaN -> 0, and round-to-nearest-even —
  // the cvtps_epi32 semantics the SIMD paths get for free.
  void (*qrequant)(const std::int32_t* acc, float scale, float bias,
                   std::uint8_t* y, std::int64_t n);
  // Dequantize at a tap boundary: y[i] = float(int(x[i]) - zp) * scale
  // (exact int subtract, then a single float rounding in the multiply).
  void (*qdequant)(const std::uint8_t* x, float scale, std::int32_t zp,
                   float* y, std::int64_t n);
  // Quantize the float network input:
  // y[i] = u8(rne(clamp(x[i] * inv_scale + zp, 0, 255))), same float
  // semantics as qrequant.
  void (*qquant)(const float* x, float inv_scale, float zp, std::uint8_t* y,
                 std::int64_t n);
};

// The table for `isa`, or nullptr when this build/CPU cannot run it.
// Tests iterate supported ISAs and pin each against `scalar::Table()`.
const OpTable* TableFor(Isa isa);

// Highest supported ISA, capped by the FF_SIMD env var ("scalar", "sse2",
// "avx2"); resolved once on first use.
Isa ActiveIsa();

// The active table (never nullptr).
const OpTable& Active();

// Test hook: force the active table to `isa` (must be supported); returns
// the previously active ISA so tests can restore it.
Isa SetActiveIsaForTest(Isa isa);

// Reference implementations — always available, used as the parity oracle
// and as the fallback on non-x86 hosts.
namespace scalar {
const OpTable& Table();
}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched convenience wrappers (what the layers call).
// ---------------------------------------------------------------------------

inline void Fill(float* y, std::int64_t n, float v) { Active().fill(y, n, v); }
inline void Axpy(float a, const float* x, float* y, std::int64_t n) {
  Active().axpy(a, x, y, n);
}
inline void Axpy4(const float* w, const float* x, float* y0, float* y1,
                  float* y2, float* y3, std::int64_t n) {
  Active().axpy4(w, x, y0, y1, y2, y3, n);
}
inline void AxpyRows(float a, const float* x, std::int64_t x_stride, float* y,
                     std::int64_t y_stride, std::int64_t rows,
                     std::int64_t n) {
  Active().axpy_rows(a, x, x_stride, y, y_stride, rows, n);
}
inline void Axpy4Rows(const float* w, const float* x, std::int64_t x_stride,
                      float* y0, float* y1, float* y2, float* y3,
                      std::int64_t y_stride, std::int64_t rows,
                      std::int64_t n) {
  Active().axpy4_rows(w, x, x_stride, y0, y1, y2, y3, y_stride, rows, n);
}
inline void PwAcc4(const float* const* x, std::int64_t n_ic, const float* w,
                   std::int64_t w_stride, float* y0, float* y1, float* y2,
                   float* y3, std::int64_t n) {
  Active().pw_acc4(x, n_ic, w, w_stride, y0, y1, y2, y3, n);
}
inline void PwAcc1(const float* const* x, std::int64_t n_ic, const float* w,
                   float* y, std::int64_t n) {
  Active().pw_acc1(x, n_ic, w, y, n);
}
inline double Dot(const float* a, const float* b, std::int64_t n) {
  return Active().dot(a, b, n);
}
inline void Relu(const float* x, float* y, std::int64_t n) {
  Active().relu(x, y, n);
}
inline void Relu6(const float* x, float* y, std::int64_t n) {
  Active().relu6(x, y, n);
}
inline std::uint32_t SadU8(const std::uint8_t* a, const std::uint8_t* b,
                           std::int64_t n) {
  return Active().sad_u8(a, b, n);
}
inline std::uint32_t Sad16x16(const std::uint8_t* a, std::int64_t stride_a,
                              const std::uint8_t* b, std::int64_t stride_b) {
  return Active().sad16x16(a, stride_a, b, stride_b);
}
inline void QAxpyRows(std::int32_t w, const std::uint8_t* x,
                      std::int64_t x_stride, std::int32_t* acc,
                      std::int64_t acc_stride, std::int64_t rows,
                      std::int64_t n) {
  Active().qaxpy_rows(w, x, x_stride, acc, acc_stride, rows, n);
}
inline void QPwAcc1(const std::uint8_t* const* x, std::int64_t n_ic,
                    const std::int8_t* w, std::int32_t* acc, std::int64_t n) {
  Active().qpw_acc1(x, n_ic, w, acc, n);
}
inline void QPwAcc2(const std::uint8_t* const* x, std::int64_t n_ic,
                    const std::int8_t* w0, const std::int8_t* w1,
                    std::int32_t* acc0, std::int32_t* acc1, std::int64_t n) {
  Active().qpw_acc2(x, n_ic, w0, w1, acc0, acc1, n);
}
inline void QPwPack(const std::uint8_t* const* x, std::int64_t n_ic,
                    std::uint8_t* out, std::int64_t n) {
  Active().qpw_pack(x, n_ic, out, n);
}
inline void QPwAcc1P(const std::uint8_t* packed, std::int64_t n_ic,
                     const std::int8_t* w, std::int32_t* acc,
                     std::int64_t n) {
  Active().qpw_acc1p(packed, n_ic, w, acc, n);
}
inline void QPwAcc2P(const std::uint8_t* packed, std::int64_t n_ic,
                     const std::int8_t* w0, const std::int8_t* w1,
                     std::int32_t* acc0, std::int32_t* acc1, std::int64_t n) {
  Active().qpw_acc2p(packed, n_ic, w0, w1, acc0, acc1, n);
}
inline void QAxpyRowsS2(std::int32_t w, const std::uint8_t* x,
                        std::int64_t x_stride, std::int32_t* acc,
                        std::int64_t acc_stride, std::int64_t rows,
                        std::int64_t n) {
  Active().qaxpy_rows_s2(w, x, x_stride, acc, acc_stride, rows, n);
}
inline std::int32_t QDot(const std::uint8_t* x, const std::int8_t* w,
                         std::int64_t n) {
  return Active().qdot(x, w, n);
}
inline void QRequant(const std::int32_t* acc, float scale, float bias,
                     std::uint8_t* y, std::int64_t n) {
  Active().qrequant(acc, scale, bias, y, n);
}
inline void QDequant(const std::uint8_t* x, float scale, std::int32_t zp,
                     float* y, std::int64_t n) {
  Active().qdequant(x, scale, zp, y, n);
}
inline void QQuant(const float* x, float inv_scale, float zp, std::uint8_t* y,
                   std::int64_t n) {
  Active().qquant(x, inv_scale, zp, y, n);
}

// ---------------------------------------------------------------------------
// Thread-pool dispatch policy, shared by conv / depthwise / pooling / dense.
// ---------------------------------------------------------------------------

// Minimum flops before a layer hands work to util::GlobalPool(); below it,
// the dispatch overhead outweighs the parallelism. Overridable via the
// FF_PARALLEL_FLOPS env var for multicore benchmarking (read once).
std::int64_t ParallelFlopThreshold();

inline bool WorthParallel(std::int64_t flops) {
  return flops > ParallelFlopThreshold();
}

// Runs `block(n, c0, c1)` over the flattened (batch × channel) plane index
// space, fanned out across util::GlobalPool() when `total_flops` clears the
// shared threshold — the one dispatch policy conv, depthwise, and the
// pooling layers all follow. Batched inputs widen the fan-out to
// n × channels instead of channels alone.
template <typename Block>
void ForEachPlaneBlock(std::int64_t batch, std::int64_t channels,
                       std::int64_t total_flops, const Block& block) {
  if (WorthParallel(total_flops)) {
    util::GlobalPool().ParallelForRange(
        static_cast<std::size_t>(batch * channels),
        [&](std::size_t b, std::size_t e) {
          for (auto idx = static_cast<std::int64_t>(b);
               idx < static_cast<std::int64_t>(e);) {
            const std::int64_t n = idx / channels;
            const std::int64_t c0 = idx % channels;
            const std::int64_t c1 =
                std::min(channels, c0 + (static_cast<std::int64_t>(e) - idx));
            block(n, c0, c1);
            idx += c1 - c0;
          }
        });
  } else {
    for (std::int64_t n = 0; n < batch; ++n) block(n, 0, channels);
  }
}

// Per-plane convenience wrapper: `fn(n, c)` for every plane.
template <typename PlaneFn>
void ForEachPlane(std::int64_t batch, std::int64_t channels,
                  std::int64_t total_flops, const PlaneFn& fn) {
  ForEachPlaneBlock(batch, channels, total_flops,
                    [&](std::int64_t n, std::int64_t c0, std::int64_t c1) {
                      for (std::int64_t c = c0; c < c1; ++c) fn(n, c);
                    });
}

}  // namespace ff::nn::kernels
