#include "nn/activations.hpp"

#include <cmath>

#include "nn/kernels.hpp"

namespace ff::nn {

namespace {

template <typename Op>
void ApplyElementwise(const TensorView& in, Tensor& out, Op op) {
  float* y = out.data();
  if (in.contiguous()) {
    const float* x = in.data();
    const std::int64_t n = in.elements();
    for (std::int64_t i = 0; i < n; ++i) y[i] = op(x[i]);
    return;
  }
  const Shape& s = in.shape();
  for (std::int64_t n = 0; n < s.n; ++n) {
    for (std::int64_t c = 0; c < s.c; ++c) {
      for (std::int64_t r = 0; r < s.h; ++r) {
        const float* x = in.row(n, c, r);
        for (std::int64_t i = 0; i < s.w; ++i) *y++ = op(x[i]);
      }
    }
  }
}

// Run-structured variant for the SIMD kernels: one call over the whole
// buffer when dense, one per row when the view is a crop.
void ApplyRuns(const TensorView& in, Tensor& out,
               void (*kernel)(const float*, float*, std::int64_t)) {
  float* y = out.data();
  if (in.contiguous()) {
    kernel(in.data(), y, in.elements());
    return;
  }
  const Shape& s = in.shape();
  for (std::int64_t n = 0; n < s.n; ++n) {
    for (std::int64_t c = 0; c < s.c; ++c) {
      for (std::int64_t r = 0; r < s.h; ++r) {
        kernel(in.row(n, c, r), y, s.w);
        y += s.w;
      }
    }
  }
}

}  // namespace

Tensor Activation::Forward(const TensorView& in) {
  Tensor out(in.shape());
  switch (kind_) {
    case ActKind::kRelu:
      ApplyRuns(in, out, kernels::Active().relu);
      break;
    case ActKind::kRelu6:
      ApplyRuns(in, out, kernels::Active().relu6);
      break;
    case ActKind::kSigmoid:
      ApplyElementwise(in, out, [](float v) {
        return 1.0f / (1.0f + std::exp(-v));
      });
      break;
  }
  if (training_) saved_out_ = out;
  return out;
}

Tensor Activation::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!saved_out_.empty(),
               name() << ": Backward without a training-mode Forward");
  FF_CHECK(grad_out.shape() == saved_out_.shape());
  Tensor grad_in(grad_out.shape());
  const float* g = grad_out.data();
  const float* y = saved_out_.data();
  float* d = grad_in.data();
  const std::int64_t n = grad_out.elements();
  switch (kind_) {
    case ActKind::kRelu:
      for (std::int64_t i = 0; i < n; ++i) d[i] = y[i] > 0.0f ? g[i] : 0.0f;
      break;
    case ActKind::kRelu6:
      for (std::int64_t i = 0; i < n; ++i) {
        d[i] = (y[i] > 0.0f && y[i] < 6.0f) ? g[i] : 0.0f;
      }
      break;
    case ActKind::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) d[i] = g[i] * y[i] * (1.0f - y[i]);
      break;
  }
  return grad_in;
}

LayerPtr MakeRelu(std::string name) {
  return std::make_unique<Activation>(std::move(name), ActKind::kRelu);
}
LayerPtr MakeRelu6(std::string name) {
  return std::make_unique<Activation>(std::move(name), ActKind::kRelu6);
}
LayerPtr MakeSigmoid(std::string name) {
  return std::make_unique<Activation>(std::move(name), ActKind::kSigmoid);
}

}  // namespace ff::nn
