#include "nn/sequential.hpp"

namespace ff::nn {

Layer& Sequential::Add(LayerPtr layer) {
  FF_CHECK_MSG(index_.find(layer->name()) == index_.end(),
               name_ << ": duplicate layer name " << layer->name());
  index_[layer->name()] = layers_.size();
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

std::size_t Sequential::IndexOf(const std::string& layer_name) const {
  const auto it = index_.find(layer_name);
  FF_CHECK_MSG(it != index_.end(), name_ << ": no layer named " << layer_name);
  return it->second;
}

bool Sequential::Contains(const std::string& layer_name) const {
  return index_.find(layer_name) != index_.end();
}

Tensor Sequential::Forward(const TensorView& in) {
  FF_CHECK(!layers_.empty());
  Tensor x = layers_[0]->Forward(in);
  for (std::size_t i = 1; i < layers_.size(); ++i) x = layers_[i]->Forward(x);
  return x;
}

Tensor Sequential::ForwardTo(const TensorView& in, const std::string& last_layer) {
  const std::size_t last = IndexOf(last_layer);
  Tensor x = layers_[0]->Forward(in);
  for (std::size_t i = 1; i <= last; ++i) x = layers_[i]->Forward(x);
  return x;
}

Tensor Sequential::ForwardRange(const TensorView& in, std::size_t begin,
                                std::size_t end) {
  FF_CHECK(begin < end && end <= layers_.size());
  Tensor x = layers_[begin]->Forward(in);
  for (std::size_t i = begin + 1; i < end; ++i) x = layers_[i]->Forward(x);
  return x;
}

std::map<std::string, Tensor> Sequential::ForwardWithTaps(
    const TensorView& in, const std::set<std::string>& taps) {
  FF_CHECK(!taps.empty());
  std::size_t deepest = 0;
  for (const auto& t : taps) deepest = std::max(deepest, IndexOf(t));
  std::map<std::string, Tensor> out;
  Tensor x = layers_[0]->Forward(in);
  if (taps.count(layers_[0]->name())) out[layers_[0]->name()] = x;
  for (std::size_t i = 1; i <= deepest; ++i) {
    x = layers_[i]->Forward(x);
    if (taps.count(layers_[i]->name())) out[layers_[i]->name()] = x;
  }
  return out;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  FF_CHECK(!layers_.empty());
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<ParamView> Sequential::Params() {
  std::vector<ParamView> all;
  for (auto& l : layers_) {
    for (auto& p : l->Params()) all.push_back(p);
  }
  return all;
}

void Sequential::ZeroGrad() {
  for (auto& l : layers_) l->ZeroGrad();
}

void Sequential::SetTraining(bool training) {
  for (auto& l : layers_) l->set_training(training);
}

Shape Sequential::OutputShape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->OutputShape(s);
  return s;
}

Shape Sequential::OutputShapeAt(const Shape& in,
                                const std::string& last_layer) const {
  const std::size_t last = IndexOf(last_layer);
  Shape s = in;
  for (std::size_t i = 0; i <= last; ++i) s = layers_[i]->OutputShape(s);
  return s;
}

std::uint64_t Sequential::Macs(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& l : layers_) {
    total += l->Macs(s);
    s = l->OutputShape(s);
  }
  return total;
}

std::uint64_t Sequential::MacsTo(const Shape& in,
                                 const std::string& last_layer) const {
  const std::size_t last = IndexOf(last_layer);
  std::uint64_t total = 0;
  Shape s = in;
  for (std::size_t i = 0; i <= last; ++i) {
    total += layers_[i]->Macs(s);
    s = layers_[i]->OutputShape(s);
  }
  return total;
}

std::vector<Sequential::LayerCost> Sequential::CostTrace(const Shape& in) const {
  std::vector<LayerCost> trace;
  Shape s = in;
  for (const auto& l : layers_) {
    const Shape out = l->OutputShape(s);
    trace.push_back({l->name(), l->Macs(s), out});
    s = out;
  }
  return trace;
}

std::int64_t Sequential::ParamCount() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) {
    for (const auto& p : const_cast<Layer&>(*l).Params()) {
      total += static_cast<std::int64_t>(p.value->size());
    }
  }
  return total;
}

}  // namespace ff::nn
