#include "nn/conv.hpp"

#include <algorithm>
#include <cstring>

#include "nn/kernels.hpp"
#include "util/thread_pool.hpp"

namespace ff::nn {

AxisGeometry ComputeAxisGeometry(std::int64_t in, std::int64_t k,
                                 std::int64_t s, Padding pad) {
  FF_CHECK_GT(in, 0);
  FF_CHECK_GT(k, 0);
  FF_CHECK_GT(s, 0);
  AxisGeometry g;
  switch (pad) {
    case Padding::kValid:
      FF_CHECK_MSG(in >= k, "valid conv needs in >= k, in=" << in << " k=" << k);
      g.out = (in - k) / s + 1;
      g.pad_begin = 0;
      break;
    case Padding::kSameCeil: {
      g.out = (in + s - 1) / s;
      const std::int64_t needed = (g.out - 1) * s + k;
      const std::int64_t total = std::max<std::int64_t>(0, needed - in);
      g.pad_begin = total / 2;
      break;
    }
    case Padding::kSameFloor: {
      g.out = in / s;
      FF_CHECK_MSG(g.out > 0, "input " << in << " smaller than stride " << s);
      const std::int64_t needed = (g.out - 1) * s + k;
      const std::int64_t total = std::max<std::int64_t>(0, needed - in);
      g.pad_begin = total / 2;
      break;
    }
  }
  return g;
}

namespace {

// Valid output-x range so that ix = ox*s + kx - pad_x stays inside [0, in_w).
struct XRange {
  std::int64_t lo, hi;  // [lo, hi)
};
XRange ValidX(std::int64_t out_w, std::int64_t in_w, std::int64_t s,
              std::int64_t kx, std::int64_t pad_x) {
  const std::int64_t off = kx - pad_x;
  // ox*s + off >= 0  =>  ox >= ceil(-off / s)
  std::int64_t lo = 0;
  if (off < 0) lo = (-off + s - 1) / s;
  // ox*s + off < in_w  =>  ox <= floor((in_w - 1 - off) / s)
  std::int64_t hi = out_w;
  const std::int64_t max_ix = in_w - 1 - off;
  if (max_ix < 0) {
    hi = 0;
  } else {
    hi = std::min<std::int64_t>(out_w, max_ix / s + 1);
  }
  return {lo, std::max(lo, hi)};
}

using kernels::ForEachPlaneBlock;

}  // namespace

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

Conv2D::Conv2D(std::string name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t k, std::int64_t stride, Padding pad)
    : Layer(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      k_(k),
      stride_(stride),
      pad_(pad),
      w_(static_cast<std::size_t>(out_c * in_c * k * k), 0.0f),
      b_(static_cast<std::size_t>(out_c), 0.0f),
      dw_(w_.size(), 0.0f),
      db_(b_.size(), 0.0f) {
  FF_CHECK_GT(in_c, 0);
  FF_CHECK_GT(out_c, 0);
  FF_CHECK_GT(k, 0);
  FF_CHECK_GT(stride, 0);
}

Shape Conv2D::OutputShape(const Shape& in) const {
  FF_CHECK_MSG(in.c == in_c_, name() << ": expected " << in_c_
                                     << " input channels, got " << in.c);
  const AxisGeometry gy = ComputeAxisGeometry(in.h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.w, k_, stride_, pad_);
  return Shape{in.n, out_c_, gy.out, gx.out};
}

Tensor Conv2D::Forward(const TensorView& in) {
  const Shape out_shape = OutputShape(in.shape());
  Tensor out(out_shape);
  const AxisGeometry gy = ComputeAxisGeometry(in.shape().h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.shape().w, k_, stride_, pad_);
  const std::int64_t ih = in.shape().h, iw = in.shape().w;
  const std::int64_t oh = out_shape.h, ow = out_shape.w;
  const std::int64_t is = in.row_stride();

  // Fast path: 1x1 stride-1 convolution is a sequence of rank-1 (axpy)
  // updates over contiguous runs; blocking 4 output channels per input
  // plane load quadruples arithmetic intensity. This path carries ~75% of
  // MobileNet's multiply-adds, so it is the one that matters. A dense plane
  // is processed as one h*w run; a strided (cropped-view) plane as h runs of
  // w floats, is apart.
  const bool pointwise = (k_ == 1 && stride_ == 1);
  const std::int64_t n_runs = in.plane_contiguous() ? 1 : ih;
  const std::int64_t run = in.plane_contiguous() ? ih * iw : iw;

  auto compute_oc_block = [&](std::int64_t n, std::int64_t oc0,
                              std::int64_t oc1) {
    for (std::int64_t oc = oc0; oc < oc1; ++oc) {
      kernels::Fill(out.plane(n, oc), oh * ow,
                    b_[static_cast<std::size_t>(oc)]);
    }
    if (pointwise) {
      // Input-plane run pointers gathered once per oc block (the old code
      // recomputed out.plane per input-channel iteration); the fused PwAcc
      // kernels keep 4 output rows in registers across the whole ic loop.
      std::vector<const float*> xs(
          static_cast<std::size_t>(n_runs * in_c_));
      for (std::int64_t ic = 0; ic < in_c_; ++ic) {
        const float* ipl = in.plane(n, ic);
        for (std::int64_t r = 0; r < n_runs; ++r) {
          xs[static_cast<std::size_t>(r * in_c_ + ic)] = ipl + r * is;
        }
      }
      std::int64_t oc = oc0;
      for (; oc + 4 <= oc1; oc += 4) {
        float* const o0 = out.plane(n, oc);
        float* const o1 = out.plane(n, oc + 1);
        float* const o2 = out.plane(n, oc + 2);
        float* const o3 = out.plane(n, oc + 3);
        const float* w = &w_[static_cast<std::size_t>(oc * in_c_)];
        for (std::int64_t r = 0; r < n_runs; ++r) {
          kernels::PwAcc4(&xs[static_cast<std::size_t>(r * in_c_)], in_c_, w,
                          in_c_, o0 + r * run, o1 + r * run, o2 + r * run,
                          o3 + r * run, run);
        }
      }
      for (; oc < oc1; ++oc) {
        float* const op = out.plane(n, oc);
        const float* w = &w_[static_cast<std::size_t>(oc * in_c_)];
        for (std::int64_t r = 0; r < n_runs; ++r) {
          kernels::PwAcc1(&xs[static_cast<std::size_t>(r * in_c_)], in_c_, w,
                          op + r * run, run);
        }
      }
      return;
    }
    // General KxK path: scalar weight broadcast over a row axpy, blocked
    // four output channels per input-row load for stride 1 (the inner
    // x-loop is contiguous and runs through the SIMD kernel).
    std::int64_t oc = oc0;
    for (; stride_ == 1 && oc + 4 <= oc1; oc += 4) {
      float* const o0 = out.plane(n, oc);
      float* const o1 = out.plane(n, oc + 1);
      float* const o2 = out.plane(n, oc + 2);
      float* const o3 = out.plane(n, oc + 3);
      for (std::int64_t ic = 0; ic < in_c_; ++ic) {
        const float* ip = in.plane(n, ic);
        const float* wrow =
            &w_[static_cast<std::size_t>((oc * in_c_ + ic) * k_ * k_)];
        const std::int64_t wplane = in_c_ * k_ * k_;
        for (std::int64_t ky = 0; ky < k_; ++ky) {
          for (std::int64_t kx = 0; kx < k_; ++kx) {
            const std::int64_t kidx = ky * k_ + kx;
            const float w4[4] = {wrow[kidx], wrow[wplane + kidx],
                                 wrow[2 * wplane + kidx],
                                 wrow[3 * wplane + kidx]};
            if (w4[0] == 0.0f && w4[1] == 0.0f && w4[2] == 0.0f &&
                w4[3] == 0.0f) {
              continue;
            }
            const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
            if (xr.hi <= xr.lo) continue;
            // Valid output rows are contiguous at stride 1; one fused call
            // covers them all.
            const std::int64_t oy_lo =
                std::max<std::int64_t>(0, gy.pad_begin - ky);
            const std::int64_t oy_hi = std::min(oh, ih - ky + gy.pad_begin);
            if (oy_hi <= oy_lo) continue;
            const float* xbase = ip + (oy_lo + ky - gy.pad_begin) * is +
                                 (kx - gx.pad_begin) + xr.lo;
            const std::int64_t off = oy_lo * ow + xr.lo;
            kernels::Axpy4Rows(w4, xbase, is, o0 + off, o1 + off, o2 + off,
                               o3 + off, ow, oy_hi - oy_lo, xr.hi - xr.lo);
          }
        }
      }
    }
    for (; oc < oc1; ++oc) {
      float* op = out.plane(n, oc);
      for (std::int64_t ic = 0; ic < in_c_; ++ic) {
        const float* ip = in.plane(n, ic);
        const float* wrow =
            &w_[static_cast<std::size_t>((oc * in_c_ + ic) * k_ * k_)];
        for (std::int64_t ky = 0; ky < k_; ++ky) {
          for (std::int64_t kx = 0; kx < k_; ++kx) {
            const float w = wrow[ky * k_ + kx];
            if (w == 0.0f) continue;
            const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
            if (xr.hi <= xr.lo) continue;
            if (stride_ == 1) {
              const std::int64_t oy_lo =
                  std::max<std::int64_t>(0, gy.pad_begin - ky);
              const std::int64_t oy_hi = std::min(oh, ih - ky + gy.pad_begin);
              if (oy_hi <= oy_lo) continue;
              const float* xbase = ip + (oy_lo + ky - gy.pad_begin) * is +
                                   (kx - gx.pad_begin) + xr.lo;
              kernels::AxpyRows(w, xbase, is, op + oy_lo * ow + xr.lo, ow,
                                oy_hi - oy_lo, xr.hi - xr.lo);
              continue;
            }
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              const std::int64_t iy = oy * stride_ + ky - gy.pad_begin;
              if (iy < 0 || iy >= ih) continue;
              const float* irow = ip + iy * is + (kx - gx.pad_begin);
              float* orow = op + oy * ow;
              for (std::int64_t ox = xr.lo; ox < xr.hi; ++ox) {
                orow[ox] += w * irow[ox * stride_];
              }
            }
          }
        }
      }
    }
  };

  const std::int64_t flops_per_oc = 2 * oh * ow * in_c_ * k_ * k_;
  ForEachPlaneBlock(in.shape().n, out_c_,
                    flops_per_oc * out_c_ * in.shape().n, compute_oc_block);

  if (training_) saved_in_ = in.Materialize();  // copy: needed for dW
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!saved_in_.empty(),
               name() << ": Backward without a training-mode Forward");
  const Tensor& in = saved_in_;
  const Shape out_shape = OutputShape(in.shape());
  FF_CHECK(grad_out.shape() == out_shape);
  const AxisGeometry gy = ComputeAxisGeometry(in.shape().h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.shape().w, k_, stride_, pad_);
  const std::int64_t ih = in.shape().h, iw = in.shape().w;
  const std::int64_t oh = out_shape.h, ow = out_shape.w;

  Tensor grad_in(in.shape());

  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    // dB and dW: parallel over output channels (each thread owns oc rows).
    util::GlobalPool().ParallelForRange(
        static_cast<std::size_t>(out_c_), [&](std::size_t b, std::size_t e) {
          for (auto oc = static_cast<std::int64_t>(b);
               oc < static_cast<std::int64_t>(e); ++oc) {
            const float* gp = grad_out.plane(n, oc);
            double gsum = 0;
            for (std::int64_t p = 0; p < oh * ow; ++p) gsum += gp[p];
            db_[static_cast<std::size_t>(oc)] += static_cast<float>(gsum);
            for (std::int64_t ic = 0; ic < in_c_; ++ic) {
              const float* ip = in.plane(n, ic);
              float* dwrow =
                  &dw_[static_cast<std::size_t>((oc * in_c_ + ic) * k_ * k_)];
              for (std::int64_t ky = 0; ky < k_; ++ky) {
                for (std::int64_t kx = 0; kx < k_; ++kx) {
                  const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
                  double acc = 0;
                  for (std::int64_t oy = 0; oy < oh; ++oy) {
                    const std::int64_t iy = oy * stride_ + ky - gy.pad_begin;
                    if (iy < 0 || iy >= ih) continue;
                    const float* irow = ip + iy * iw + (kx - gx.pad_begin);
                    const float* grow = gp + oy * ow;
                    for (std::int64_t ox = xr.lo; ox < xr.hi; ++ox) {
                      acc += static_cast<double>(grow[ox]) * irow[ox * stride_];
                    }
                  }
                  dwrow[ky * k_ + kx] += static_cast<float>(acc);
                }
              }
            }
          }
        });

    // dIn: parallel over input channels (each thread owns ic planes).
    util::GlobalPool().ParallelForRange(
        static_cast<std::size_t>(in_c_), [&](std::size_t b, std::size_t e) {
          for (auto ic = static_cast<std::int64_t>(b);
               ic < static_cast<std::int64_t>(e); ++ic) {
            float* dip = grad_in.plane(n, ic);
            for (std::int64_t oc = 0; oc < out_c_; ++oc) {
              const float* gp = grad_out.plane(n, oc);
              const float* wrow =
                  &w_[static_cast<std::size_t>((oc * in_c_ + ic) * k_ * k_)];
              for (std::int64_t ky = 0; ky < k_; ++ky) {
                for (std::int64_t kx = 0; kx < k_; ++kx) {
                  const float w = wrow[ky * k_ + kx];
                  if (w == 0.0f) continue;
                  const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
                  for (std::int64_t oy = 0; oy < oh; ++oy) {
                    const std::int64_t iy = oy * stride_ + ky - gy.pad_begin;
                    if (iy < 0 || iy >= ih) continue;
                    float* drow = dip + iy * iw + (kx - gx.pad_begin);
                    const float* grow = gp + oy * ow;
                    for (std::int64_t ox = xr.lo; ox < xr.hi; ++ox) {
                      drow[ox * stride_] += w * grow[ox];
                    }
                  }
                }
              }
            }
          }
        });
  }
  return grad_in;
}

std::vector<ParamView> Conv2D::Params() {
  return {{name() + "/weight", &w_, &dw_}, {name() + "/bias", &b_, &db_}};
}

std::uint64_t Conv2D::Macs(const Shape& in) const {
  const Shape out = OutputShape(in);
  // Paper §4.5: H/S * W/S * M * K^2 * F, with actual output dims.
  return static_cast<std::uint64_t>(out.h * out.w) *
         static_cast<std::uint64_t>(in.c) *
         static_cast<std::uint64_t>(k_ * k_) *
         static_cast<std::uint64_t>(out_c_);
}

// ---------------------------------------------------------------------------
// DepthwiseConv2D
// ---------------------------------------------------------------------------

DepthwiseConv2D::DepthwiseConv2D(std::string name, std::int64_t channels,
                                 std::int64_t k, std::int64_t stride,
                                 Padding pad)
    : Layer(std::move(name)),
      c_(channels),
      k_(k),
      stride_(stride),
      pad_(pad),
      w_(static_cast<std::size_t>(channels * k * k), 0.0f),
      b_(static_cast<std::size_t>(channels), 0.0f),
      dw_(w_.size(), 0.0f),
      db_(b_.size(), 0.0f) {
  FF_CHECK_GT(channels, 0);
  FF_CHECK_GT(k, 0);
  FF_CHECK_GT(stride, 0);
}

Shape DepthwiseConv2D::OutputShape(const Shape& in) const {
  FF_CHECK_MSG(in.c == c_, name() << ": expected " << c_
                                  << " input channels, got " << in.c);
  const AxisGeometry gy = ComputeAxisGeometry(in.h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.w, k_, stride_, pad_);
  return Shape{in.n, c_, gy.out, gx.out};
}

Tensor DepthwiseConv2D::Forward(const TensorView& in) {
  const Shape out_shape = OutputShape(in.shape());
  Tensor out(out_shape);
  const AxisGeometry gy = ComputeAxisGeometry(in.shape().h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.shape().w, k_, stride_, pad_);
  const std::int64_t ih = in.shape().h, iw = in.shape().w;
  const std::int64_t oh = out_shape.h, ow = out_shape.w;
  const std::int64_t is = in.row_stride();

  auto compute_c = [&](std::int64_t n, std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const float* ip = in.plane(n, c);
      float* op = out.plane(n, c);
      kernels::Fill(op, oh * ow, b_[static_cast<std::size_t>(c)]);
      const float* wrow = &w_[static_cast<std::size_t>(c * k_ * k_)];
      for (std::int64_t ky = 0; ky < k_; ++ky) {
        for (std::int64_t kx = 0; kx < k_; ++kx) {
          const float w = wrow[ky * k_ + kx];
          const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
          if (xr.hi <= xr.lo) continue;
          if (stride_ == 1) {
            const std::int64_t oy_lo =
                std::max<std::int64_t>(0, gy.pad_begin - ky);
            const std::int64_t oy_hi = std::min(oh, ih - ky + gy.pad_begin);
            if (oy_hi <= oy_lo) continue;
            const float* xbase = ip + (oy_lo + ky - gy.pad_begin) * is +
                                 (kx - gx.pad_begin) + xr.lo;
            kernels::AxpyRows(w, xbase, is, op + oy_lo * ow + xr.lo, ow,
                              oy_hi - oy_lo, xr.hi - xr.lo);
            continue;
          }
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride_ + ky - gy.pad_begin;
            if (iy < 0 || iy >= ih) continue;
            const float* irow = ip + iy * is + (kx - gx.pad_begin);
            float* orow = op + oy * ow;
            for (std::int64_t ox = xr.lo; ox < xr.hi; ++ox) {
              orow[ox] += w * irow[ox * stride_];
            }
          }
        }
      }
    }
  };

  ForEachPlaneBlock(in.shape().n, c_,
                    2 * oh * ow * k_ * k_ * c_ * in.shape().n, compute_c);
  if (training_) saved_in_ = in.Materialize();
  return out;
}

Tensor DepthwiseConv2D::Backward(const Tensor& grad_out) {
  FF_CHECK_MSG(!saved_in_.empty(),
               name() << ": Backward without a training-mode Forward");
  const Tensor& in = saved_in_;
  const Shape out_shape = OutputShape(in.shape());
  FF_CHECK(grad_out.shape() == out_shape);
  const AxisGeometry gy = ComputeAxisGeometry(in.shape().h, k_, stride_, pad_);
  const AxisGeometry gx = ComputeAxisGeometry(in.shape().w, k_, stride_, pad_);
  const std::int64_t ih = in.shape().h, iw = in.shape().w;
  const std::int64_t oh = out_shape.h, ow = out_shape.w;

  Tensor grad_in(in.shape());
  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    util::GlobalPool().ParallelForRange(
        static_cast<std::size_t>(c_), [&](std::size_t b, std::size_t e) {
          for (auto c = static_cast<std::int64_t>(b);
               c < static_cast<std::int64_t>(e); ++c) {
            const float* ip = in.plane(n, c);
            const float* gp = grad_out.plane(n, c);
            float* dip = grad_in.plane(n, c);
            float* dwrow = &dw_[static_cast<std::size_t>(c * k_ * k_)];
            const float* wrow = &w_[static_cast<std::size_t>(c * k_ * k_)];
            double gsum = 0;
            for (std::int64_t p = 0; p < oh * ow; ++p) gsum += gp[p];
            db_[static_cast<std::size_t>(c)] += static_cast<float>(gsum);
            for (std::int64_t ky = 0; ky < k_; ++ky) {
              for (std::int64_t kx = 0; kx < k_; ++kx) {
                const XRange xr = ValidX(ow, iw, stride_, kx, gx.pad_begin);
                const float w = wrow[ky * k_ + kx];
                double acc = 0;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                  const std::int64_t iy = oy * stride_ + ky - gy.pad_begin;
                  if (iy < 0 || iy >= ih) continue;
                  const float* irow = ip + iy * iw + (kx - gx.pad_begin);
                  float* drow = dip + iy * iw + (kx - gx.pad_begin);
                  const float* grow = gp + oy * ow;
                  for (std::int64_t ox = xr.lo; ox < xr.hi; ++ox) {
                    acc += static_cast<double>(grow[ox]) * irow[ox * stride_];
                    drow[ox * stride_] += w * grow[ox];
                  }
                }
                dwrow[ky * k_ + kx] += static_cast<float>(acc);
              }
            }
          }
        });
  }
  return grad_in;
}

std::vector<ParamView> DepthwiseConv2D::Params() {
  return {{name() + "/weight", &w_, &dw_}, {name() + "/bias", &b_, &db_}};
}

std::uint64_t DepthwiseConv2D::Macs(const Shape& in) const {
  const Shape out = OutputShape(in);
  // Depthwise part of the separable-conv formula: H/S * W/S * M * K^2.
  return static_cast<std::uint64_t>(out.h * out.w) *
         static_cast<std::uint64_t>(c_) * static_cast<std::uint64_t>(k_ * k_);
}

}  // namespace ff::nn
