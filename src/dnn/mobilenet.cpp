#include "dnn/mobilenet.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/pooling.hpp"

namespace ff::dnn {

namespace {

using nn::Padding;

// (name, output channels, stride) for the 13 depthwise-separable blocks.
struct BlockSpec {
  const char* name;
  std::int64_t out_c;
  std::int64_t stride;
};

constexpr BlockSpec kBlocks[] = {
    {"conv2_1", 64, 1},   {"conv2_2", 128, 2},  {"conv3_1", 128, 1},
    {"conv3_2", 256, 2},  {"conv4_1", 256, 1},  {"conv4_2", 512, 2},
    {"conv5_1", 512, 1},  {"conv5_2", 512, 1},  {"conv5_3", 512, 1},
    {"conv5_4", 512, 1},  {"conv5_5", 512, 1},  {"conv5_6", 1024, 2},
    {"conv6", 1024, 1},
};

}  // namespace

std::int64_t ScaledChannels(std::int64_t base, double alpha) {
  const auto scaled =
      static_cast<std::int64_t>(std::lround(static_cast<double>(base) * alpha));
  return std::max<std::int64_t>(8, scaled);
}

nn::Sequential BuildMobileNetV1(const MobileNetOptions& opts) {
  FF_CHECK_GT(opts.alpha, 0.0);
  nn::Sequential net("mobilenet_v1");

  // conv1: standard 3x3 stride-2. The "/conv" suffix distinguishes the conv
  // op from the post-ReLU blob that shares the Caffe blob name.
  std::int64_t c = ScaledChannels(32, opts.alpha);
  net.Add(std::make_unique<nn::Conv2D>("conv1/conv", 3, c, 3, 2,
                                       Padding::kSameFloor));
  net.Add(nn::MakeRelu("conv1"));

  for (const auto& blk : kBlocks) {
    const std::int64_t out_c = ScaledChannels(blk.out_c, opts.alpha);
    net.Add(std::make_unique<nn::DepthwiseConv2D>(
        std::string(blk.name) + "/dw/conv", c, 3, blk.stride,
        Padding::kSameFloor));
    net.Add(nn::MakeRelu(std::string(blk.name) + "/dw"));
    net.Add(std::make_unique<nn::Conv2D>(std::string(blk.name) + "/sep/conv",
                                         c, out_c, 1, 1, Padding::kSameFloor));
    net.Add(nn::MakeRelu(std::string(blk.name) + "/sep"));
    c = out_c;
  }

  if (opts.include_classifier) {
    net.Add(std::make_unique<nn::GlobalAvgPool>("pool6"));
    net.Add(std::make_unique<nn::FullyConnected>("fc7", c,
                                                 opts.classifier_classes));
  }

  nn::HeInit(net, opts.seed);
  if (opts.structured_conv1) {
    auto& conv1 = dynamic_cast<nn::Conv2D&>(net.layer(net.IndexOf("conv1/conv")));
    InitStructuredConv1(conv1, opts.seed);
  }
  return net;
}

void InitStructuredConv1(nn::Conv2D& conv1, std::uint64_t seed) {
  FF_CHECK_EQ(conv1.in_channels(), 3);
  FF_CHECK_EQ(conv1.kernel(), 3);
  const std::int64_t out_c = conv1.out_channels();
  auto& w = conv1.weights();
  auto at = [&](std::int64_t oc, std::int64_t ic, std::int64_t ky,
                std::int64_t kx) -> float& {
    return w[static_cast<std::size_t>(((oc * 3 + ic) * 3 + ky) * 3 + kx)];
  };
  // Keep the He-random tail for filters we do not overwrite; rescale it so
  // structured filters dominate early representation noise.
  util::Pcg32 rng(seed ^ 0xc0105eedULL);
  std::int64_t oc = 0;
  // Color passthrough: one center-tap filter per input channel.
  for (std::int64_t ic = 0; ic < 3 && oc < out_c; ++ic, ++oc) {
    for (std::int64_t ky = 0; ky < 3; ++ky) {
      for (std::int64_t kx = 0; kx < 3; ++kx) {
        for (std::int64_t c = 0; c < 3; ++c) at(oc, c, ky, kx) = 0.0f;
      }
    }
    at(oc, ic, 1, 1) = 1.2f;
  }
  // Color opponents: R-G, R-B, G-B at the center tap.
  const std::int64_t opponents[3][2] = {{0, 1}, {0, 2}, {1, 2}};
  for (const auto& [a, b] : opponents) {
    if (oc >= out_c) break;
    for (std::int64_t ky = 0; ky < 3; ++ky) {
      for (std::int64_t kx = 0; kx < 3; ++kx) {
        for (std::int64_t c = 0; c < 3; ++c) at(oc, c, ky, kx) = 0.0f;
      }
    }
    at(oc, a, 1, 1) = 1.0f;
    at(oc, b, 1, 1) = -1.0f;
    ++oc;
  }
  // Oriented luma edges (Sobel x/y, both polarities, plus diagonals).
  const float sobel_x[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const float sobel_y[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  const float diag_a[9] = {0, 1, 2, -1, 0, 1, -2, -1, 0};
  const float diag_b[9] = {2, 1, 0, 1, 0, -1, 0, -1, -2};
  for (const float* k : {sobel_x, sobel_y, diag_a, diag_b}) {
    for (const float sign : {0.35f, -0.35f}) {
      if (oc >= out_c) break;
      for (std::int64_t ky = 0; ky < 3; ++ky) {
        for (std::int64_t kx = 0; kx < 3; ++kx) {
          for (std::int64_t c = 0; c < 3; ++c) {
            at(oc, c, ky, kx) = sign * k[ky * 3 + kx] / 3.0f;
          }
        }
      }
      ++oc;
    }
  }
  // Remaining filters stay He-random (already initialized).
  (void)rng;
}

std::vector<std::string> MobileNetTapNames() {
  std::vector<std::string> names = {"conv1"};
  for (const auto& blk : kBlocks) {
    names.push_back(std::string(blk.name) + "/dw");
    names.push_back(std::string(blk.name) + "/sep");
  }
  return names;
}

std::int64_t TapStride(const std::string& tap) {
  if (tap == "conv1") return 2;
  std::int64_t stride = 2;  // conv1
  for (const auto& blk : kBlocks) {
    stride *= blk.stride;
    if (tap == std::string(blk.name) + "/dw" ||
        tap == std::string(blk.name) + "/sep") {
      return stride;
    }
  }
  FF_CHECK_MSG(false, "unknown tap " << tap);
  return 0;
}

std::int64_t TapChannels(const std::string& tap, double alpha) {
  if (tap == "conv1") return ScaledChannels(32, alpha);
  std::int64_t in_c = ScaledChannels(32, alpha);
  for (const auto& blk : kBlocks) {
    const std::int64_t out_c = ScaledChannels(blk.out_c, alpha);
    if (tap == std::string(blk.name) + "/dw") return in_c;
    if (tap == std::string(blk.name) + "/sep") return out_c;
    in_c = out_c;
  }
  FF_CHECK_MSG(false, "unknown tap " << tap);
  return 0;
}

}  // namespace ff::dnn
