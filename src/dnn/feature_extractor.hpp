// The feature extractor (paper §3.1): evaluates the base DNN once per frame
// and hands the requested intermediate activations to all microclassifiers.
//
// The extractor stops the forward pass at the deepest requested tap, so an
// edge node whose tenants all read conv4_2/sep never executes conv5_*/conv6.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "dnn/mobilenet.hpp"
#include "nn/quantize.hpp"
#include "nn/sequential.hpp"

namespace ff::dnn {

// Activations for one frame, keyed by tap name.
using FeatureMaps = std::map<std::string, nn::Tensor>;

// Extractor construction options. `quantize = false` (the default) keeps the
// float path bitwise-identical to an extractor built from MobileNetOptions
// alone; `quantize = true` swaps the trunk forward pass for the int8 program
// (nn/quantize.hpp) once activation scales exist — either calibrated from
// the first Extract batch (or an explicit CalibrateQuantized call) or loaded
// from an FFNQ checkpoint. Taps still come back as float32 tensors, so MCs
// and signature consumers never see quantized bytes.
struct FeatureExtractorConfig {
  MobileNetOptions model{};
  bool quantize = false;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(MobileNetOptions opts = {});
  explicit FeatureExtractor(const FeatureExtractorConfig& config);

  // Registers a tap; must be one of MobileNetTapNames(). Requests are
  // reference-counted so independent consumers (tenants across all of an
  // EdgeFleet's streams, trainers, benches) can share one extractor.
  void RequestTap(const std::string& tap);
  // Releases one reference; when the last holder of the deepest tap lets
  // go, subsequent Extract calls stop the forward pass earlier again (the
  // fleet calls this when a tenant detaches or its stream is removed).
  void ReleaseTap(const std::string& tap);
  const std::set<std::string>& taps() const { return taps_; }
  // Outstanding references on one tap (0 when unrequested). Lets tests pin
  // that stream/tenant churn restores the early-exit depth exactly.
  std::int64_t TapRefs(const std::string& tap) const;

  // Runs the base DNN on a preprocessed frame batch (N, 3, H, W) and
  // returns the requested activations, each with the same leading batch
  // dimension. Every image is computed exactly as a batch-1 call would
  // (bitwise: image n of a batched tap equals Extract on frame n alone —
  // pinned by edge_batch_test), but the conv kernels parallelize across
  // n × out_c instead of out_c alone, which is what keeps a thread pool fed
  // on multicore (ROADMAP: frame batching).
  //
  // Taking a view (owning Tensors convert implicitly) is what lets the
  // EdgeFleet's geometry buckets reuse one staging tensor per bucket across
  // batches: a partial batch passes TensorView::Prefix of the staging
  // storage instead of materializing a right-sized input every Step.
  FeatureMaps Extract(const tensor::TensorView& frames);

  // Multiply-adds for one frame of shape (1, 3, h, w): the cost of the
  // prefix up to the deepest requested tap. This is the "upfront overhead"
  // amortized across MCs (paper §3.1, Fig. 6).
  std::uint64_t MacsPerFrame(std::int64_t h, std::int64_t w) const;

  // Shape of a tap's activation for an h x w frame.
  nn::Shape TapShape(const std::string& tap, std::int64_t h,
                     std::int64_t w) const;

  const MobileNetOptions& options() const { return opts_; }
  nn::Sequential& network() { return net_; }

  // True when this extractor was configured for int8 inference.
  bool quantized() const { return quantize_; }
  // True once activation scales exist (calibration ran or an FFNQ
  // checkpoint was loaded) and Extract will take the int8 path.
  bool quantized_ready() const { return qprog_.has_value(); }

  // Builds the int8 program now, using `frames` as the calibration batch
  // (requires a quantize-configured extractor). Extract auto-calibrates on
  // its first batch when this was never called.
  void CalibrateQuantized(const tensor::TensorView& frames);

  // Checkpoint I/O honoring the configured mode: float extractors write /
  // read "FFNW" weight files, quantized extractors write / read "FFNQ"
  // programs (saving requires quantized_ready()). Loading a file of the
  // other kind fails a loud FF_CHECK naming both kinds.
  void SaveWeights(const std::string& path);
  void LoadWeights(const std::string& path);

 private:
  // Internal layer name of the ReLU blob for a tap (identical today; kept as
  // a seam in case tap aliasing is needed).
  MobileNetOptions opts_;
  nn::Sequential net_;
  std::set<std::string> taps_;
  std::map<std::string, std::int64_t> tap_refs_;
  bool quantize_ = false;
  std::optional<nn::QuantizedProgram> qprog_;
};

// Converts 8-bit RGB planes to the base DNN's input tensor (1, 3, h, w),
// scaled to [-1, 1] (MobileNet's 1/127.5 - 1 preprocessing).
nn::Tensor PreprocessRgb(const std::uint8_t* r, const std::uint8_t* g,
                         const std::uint8_t* b, std::int64_t h, std::int64_t w);

// Same conversion written into image `n` of a preallocated (N, 3, h, w)
// batch tensor — the staging step of the batched Submit path. Bitwise
// identical to PreprocessRgb on the same planes.
void PreprocessRgbInto(nn::Tensor& batch, std::int64_t n,
                       const std::uint8_t* r, const std::uint8_t* g,
                       const std::uint8_t* b);

}  // namespace ff::dnn
