#include "dnn/feature_extractor.hpp"

#include <fstream>
#include <sstream>

#include "nn/serialize.hpp"

namespace ff::dnn {

FeatureExtractor::FeatureExtractor(MobileNetOptions opts)
    : opts_(opts), net_(BuildMobileNetV1(opts)) {}

FeatureExtractor::FeatureExtractor(const FeatureExtractorConfig& config)
    : opts_(config.model),
      net_(BuildMobileNetV1(config.model)),
      quantize_(config.quantize) {}

void FeatureExtractor::RequestTap(const std::string& tap) {
  FF_CHECK_MSG(net_.Contains(tap), "unknown tap layer: " << tap);
  taps_.insert(tap);
  ++tap_refs_[tap];
}

void FeatureExtractor::ReleaseTap(const std::string& tap) {
  const auto it = tap_refs_.find(tap);
  FF_CHECK_MSG(it != tap_refs_.end() && it->second > 0,
               "releasing tap " << tap << " that was never requested");
  if (--it->second == 0) {
    tap_refs_.erase(it);
    taps_.erase(tap);
  }
}

std::int64_t FeatureExtractor::TapRefs(const std::string& tap) const {
  const auto it = tap_refs_.find(tap);
  return it == tap_refs_.end() ? 0 : it->second;
}

FeatureMaps FeatureExtractor::Extract(const tensor::TensorView& frames) {
  FF_CHECK_MSG(!taps_.empty(), "no taps requested");
  FF_CHECK_EQ(frames.shape().c, 3);
  FF_CHECK_GE(frames.shape().n, 1);
  if (quantize_) {
    if (!qprog_) CalibrateQuantized(frames);
    return qprog_->ForwardWithTaps(frames, taps_);
  }
  return net_.ForwardWithTaps(frames, taps_);
}

void FeatureExtractor::CalibrateQuantized(const tensor::TensorView& frames) {
  FF_CHECK_MSG(quantize_,
               "CalibrateQuantized on an extractor configured for float");
  qprog_ = nn::Quantizer::Quantize(net_, frames);
}

void FeatureExtractor::SaveWeights(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FF_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  std::string bytes;
  if (quantize_) {
    FF_CHECK_MSG(qprog_.has_value(),
                 "saving a quantized extractor before calibration");
    bytes = nn::SerializeQuantized(*qprog_);
  } else {
    bytes = nn::SerializeWeights(net_);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FF_CHECK_MSG(out.good(), "short write to " << path);
}

void FeatureExtractor::LoadWeights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FF_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  // The deserializers reject a checkpoint of the other kind with a loud
  // FF_CHECK naming both formats (see nn/serialize.cpp).
  if (quantize_) {
    qprog_ = nn::DeserializeQuantized(net_, ss.str());
  } else {
    nn::DeserializeWeights(net_, ss.str());
  }
}

std::uint64_t FeatureExtractor::MacsPerFrame(std::int64_t h,
                                             std::int64_t w) const {
  FF_CHECK(!taps_.empty());
  const nn::Shape in{1, 3, h, w};
  std::uint64_t deepest = 0;
  std::string deepest_tap;
  for (const auto& t : taps_) {
    const std::size_t idx = net_.IndexOf(t);
    if (idx >= deepest) {
      deepest = idx;
      deepest_tap = t;
    }
  }
  return net_.MacsTo(in, deepest_tap);
}

nn::Shape FeatureExtractor::TapShape(const std::string& tap, std::int64_t h,
                                     std::int64_t w) const {
  return net_.OutputShapeAt(nn::Shape{1, 3, h, w}, tap);
}

nn::Tensor PreprocessRgb(const std::uint8_t* r, const std::uint8_t* g,
                         const std::uint8_t* b, std::int64_t h,
                         std::int64_t w) {
  nn::Tensor t(nn::Shape{1, 3, h, w});
  PreprocessRgbInto(t, 0, r, g, b);
  return t;
}

void PreprocessRgbInto(nn::Tensor& batch, std::int64_t n,
                       const std::uint8_t* r, const std::uint8_t* g,
                       const std::uint8_t* b) {
  FF_CHECK_EQ(batch.shape().c, 3);
  const std::int64_t plane = batch.shape().h * batch.shape().w;
  float* pr = batch.plane(n, 0);
  float* pg = batch.plane(n, 1);
  float* pb = batch.plane(n, 2);
  constexpr float kScale = 1.0f / 127.5f;
  for (std::int64_t i = 0; i < plane; ++i) {
    pr[i] = static_cast<float>(r[i]) * kScale - 1.0f;
    pg[i] = static_cast<float>(g[i]) * kScale - 1.0f;
    pb[i] = static_cast<float>(b[i]) * kScale - 1.0f;
  }
}

}  // namespace ff::dnn
