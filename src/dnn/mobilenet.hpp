// MobileNet v1 — the paper's base DNN (§3.1).
//
// Full 13-block depthwise-separable architecture with the Caffe layer naming
// of the model the paper used (cdwat/MobileNet-Caffe): conv1, conv2_1 …
// conv5_6, conv6, pool6, fc7. Activation taps are post-ReLU, addressed by the
// Caffe blob names the paper quotes: "conv4_2/sep" (stride 16, 512 channels)
// and "conv5_6/sep" (stride 32, 1024 channels).
//
// Two reproductions of paper details:
//  * Spatial dims use floor(in/stride) padding so a 1920x1080 input yields
//    conv4_2/sep = 67x120x512 and conv5_6/sep = 33x60x1024, the exact numbers
//    in paper Fig. 2.
//  * Weights are deterministic He-initialized (see docs/ARCHITECTURE.md,
//    "Pretrained-weight substitution"): the ImageNet
//    checkpoint is unavailable offline, and random convolutional features are
//    a sufficient generic basis for the microclassifier tasks.
//
// Batch norm is folded: the inference graph is conv(+bias)+ReLU per layer,
// which is what an optimized deployment (the paper ran Intel-Caffe + MKL-DNN)
// executes anyway.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "nn/sequential.hpp"

namespace ff::dnn {

struct MobileNetOptions {
  // Width multiplier alpha; 1.0 is the paper's (unquantized 32-bit) network.
  double alpha = 1.0;
  // Include the classifier tail (pool6 + fc7/1000)? The feature extractor
  // does not need it; the "multiple MobileNets" baseline (§4.4) does.
  bool include_classifier = true;
  std::int64_t classifier_classes = 1000;
  // Weight seed (deterministic).
  std::uint64_t seed = 0x5eedbeef;
  // Initialize conv1 with deterministic color-passthrough, color-opponent,
  // and oriented-edge filters (the filter shapes ImageNet training is known
  // to converge to; Krizhevsky 2012, Yosinski 2014) instead of pure noise.
  // This is part of the pretrained-weight substitution documented in
  // docs/ARCHITECTURE.md: it restores the first-layer color/edge selectivity that
  // microclassifier tasks such as "people with red" depend on. Deeper
  // layers stay He-random.
  bool structured_conv1 = true;
};

// Channel count after width-multiplier scaling (min 8, rounded).
std::int64_t ScaledChannels(std::int64_t base, double alpha);

// Overwrites the first filters of a 3-in 3x3 conv with deterministic color
// passthrough / color-opponent / oriented-edge kernels (see
// MobileNetOptions::structured_conv1).
void InitStructuredConv1(nn::Conv2D& conv1, std::uint64_t seed);

// Builds the network. The returned Sequential owns all layers.
nn::Sequential BuildMobileNetV1(const MobileNetOptions& opts);

// Tap names in network order (conv1, conv2_1/dw, conv2_1/sep, …, conv6/sep).
// These are the post-ReLU blobs a microclassifier may pull features from.
std::vector<std::string> MobileNetTapNames();

// The taps the paper's microclassifiers use (§3.4).
inline const char* kMidTap = "conv4_2/sep";   // stride 16, 512 * alpha ch
inline const char* kLateTap = "conv5_6/sep";  // stride 32, 1024 * alpha ch

// Spatial reduction factor (input pixels per activation cell) of a tap.
std::int64_t TapStride(const std::string& tap);

// Channels of a tap under width multiplier `alpha`.
std::int64_t TapChannels(const std::string& tap, double alpha);

}  // namespace ff::dnn
