// Bit-level I/O with Exp-Golomb coding — the entropy-coding layer of the
// codec. The written stream is a real bitstream: the decoder consumes exactly
// the bits the encoder produced (tested bit-for-bit).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace ff::codec {

class BitWriter {
 public:
  void PutBit(std::uint32_t b);
  // Writes the low `n` bits of v, most-significant first (n <= 32).
  void PutBits(std::uint32_t v, int n);
  // Unsigned Exp-Golomb.
  void PutUe(std::uint32_t v);
  // Signed Exp-Golomb (0, 1, -1, 2, -2, ... mapping).
  void PutSe(std::int32_t v);

  // Byte-aligns with zero bits and returns the buffer.
  std::string Finish();

  // Bits written so far (before alignment).
  std::uint64_t bit_count() const { return bit_count_; }

 private:
  std::string bytes_;
  std::uint32_t acc_ = 0;
  int acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  std::uint32_t GetBit();
  std::uint32_t GetBits(int n);
  std::uint32_t GetUe();
  std::int32_t GetSe();

  bool exhausted() const { return pos_ >= data_.size() * 8; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;  // bit position
};

}  // namespace ff::codec
