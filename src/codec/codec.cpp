#include "codec/codec.hpp"

#include <algorithm>
#include <cmath>

#include "codec/bitstream.hpp"
#include "codec/dct.hpp"
#include "nn/kernels.hpp"
#include "util/check.hpp"

namespace ff::codec {

namespace {

std::int64_t PadTo16(std::int64_t v) { return (v + 15) / 16 * 16; }

std::uint8_t Clamp8(float v) {
  return static_cast<std::uint8_t>(
      std::clamp<long>(std::lround(v), 0L, 255L));
}

// Extracts an 8x8 block fully inside a plane.
Block GetBlock8(const std::uint8_t* p, std::int64_t stride, std::int64_t x0,
                std::int64_t y0) {
  Block b{};
  for (int y = 0; y < 8; ++y) {
    const std::uint8_t* row = p + (y0 + y) * stride + x0;
    for (int x = 0; x < 8; ++x) {
      b[static_cast<std::size_t>(y * 8 + x)] = static_cast<float>(row[x]);
    }
  }
  return b;
}

void PutBlock8(std::uint8_t* p, std::int64_t stride, std::int64_t x0,
               std::int64_t y0, const Block& b) {
  for (int y = 0; y < 8; ++y) {
    std::uint8_t* row = p + (y0 + y) * stride + x0;
    for (int x = 0; x < 8; ++x) {
      row[x] = Clamp8(b[static_cast<std::size_t>(y * 8 + x)]);
    }
  }
}

// Sum of absolute differences between a 16x16 luma block of `cur` at
// (x0, y0) and of `ref` at (x0+dx, y0+dy). Caller guarantees bounds.
std::uint32_t Sad16(const YuvImage& cur, const YuvImage& ref, std::int64_t x0,
                    std::int64_t y0, std::int64_t dx, std::int64_t dy) {
  return nn::kernels::Sad16x16(cur.y.data() + y0 * cur.w + x0, cur.w,
                               ref.y.data() + (y0 + dy) * ref.w + x0 + dx,
                               ref.w);
}

struct Mv {
  std::int64_t dx = 0, dy = 0;
};

// Diamond search around (0,0), clamped so the reference block stays inside
// the padded frame.
Mv MotionSearch(const YuvImage& cur, const YuvImage& ref, std::int64_t x0,
                std::int64_t y0, int range) {
  const std::int64_t lo_x = std::max<std::int64_t>(-range, -x0);
  const std::int64_t hi_x = std::min<std::int64_t>(range, cur.w - 16 - x0);
  const std::int64_t lo_y = std::max<std::int64_t>(-range, -y0);
  const std::int64_t hi_y = std::min<std::int64_t>(range, cur.h - 16 - y0);
  Mv best{};
  std::uint32_t best_sad = Sad16(cur, ref, x0, y0, 0, 0);
  if (best_sad < 64) return best;  // static block: not worth searching
  for (std::int64_t step = 8; step >= 1; step /= 2) {
    bool improved = true;
    while (improved) {
      improved = false;
      const Mv candidates[] = {
          {best.dx + step, best.dy}, {best.dx - step, best.dy},
          {best.dx, best.dy + step}, {best.dx, best.dy - step},
          {best.dx + step, best.dy + step}, {best.dx - step, best.dy - step},
          {best.dx + step, best.dy - step}, {best.dx - step, best.dy + step}};
      for (const Mv& c : candidates) {
        if (c.dx < lo_x || c.dx > hi_x || c.dy < lo_y || c.dy > hi_y) continue;
        const std::uint32_t sad = Sad16(cur, ref, x0, y0, c.dx, c.dy);
        if (sad < best_sad) {
          best_sad = sad;
          best = c;
          improved = true;
        }
      }
    }
  }
  return best;
}

// Quantizes and entropy-codes one residual block; returns the reconstructed
// residual (what the decoder will add to its prediction).
Block CodeBlock(BitWriter& bw, const Block& residual, double qstep) {
  const Block freq = ForwardDct(residual);
  const QuantBlock q = Quantize(freq, qstep);
  const auto& zz = ZigzagOrder();
  int n_nonzero = 0;
  for (const auto v : q) n_nonzero += v != 0 ? 1 : 0;
  if (n_nonzero == 0) {
    bw.PutBit(0);  // CBP: block not coded
    return Block{};
  }
  bw.PutBit(1);
  bw.PutUe(static_cast<std::uint32_t>(n_nonzero - 1));
  std::uint32_t run = 0;
  for (int i = 0; i < 64; ++i) {
    const std::int32_t level = q[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])];
    if (level == 0) {
      ++run;
      continue;
    }
    bw.PutUe(run);
    bw.PutSe(level);
    run = 0;
  }
  return InverseDct(Dequantize(q, qstep));
}

Block DecodeBlock(BitReader& br, double qstep) {
  if (br.GetBit() == 0) return Block{};
  const std::uint32_t n_nonzero = br.GetUe() + 1;
  QuantBlock q{};
  const auto& zz = ZigzagOrder();
  std::size_t pos = 0;
  for (std::uint32_t i = 0; i < n_nonzero; ++i) {
    const std::uint32_t run = br.GetUe();
    pos += run;
    FF_CHECK_MSG(pos < 64, "coefficient index out of range");
    q[static_cast<std::size_t>(zz[pos])] = br.GetSe();
    ++pos;
  }
  return InverseDct(Dequantize(q, qstep));
}

// The six 8x8 blocks of a macroblock: offsets within luma / chroma planes.
struct MbGeometry {
  std::int64_t mx, my;    // luma pixel origin
  std::int64_t cx, cy;    // chroma pixel origin
};

// Adds residual to prediction and writes the result into `plane`.
void ReconstructBlock(std::uint8_t* plane, std::int64_t stride,
                      std::int64_t x0, std::int64_t y0, const Block& pred,
                      const Block& residual) {
  Block sum{};
  for (std::size_t i = 0; i < 64; ++i) sum[i] = pred[i] + residual[i];
  PutBlock8(plane, stride, x0, y0, sum);
}

Block FlatBlock(float v) {
  Block b{};
  b.fill(v);
  return b;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

Encoder::Encoder(const EncoderConfig& cfg)
    : cfg_(cfg),
      pad_w_(PadTo16(cfg.width)),
      pad_h_(PadTo16(cfg.height)),
      qp_(cfg.initial_qp) {
  FF_CHECK_GT(cfg.width, 0);
  FF_CHECK_GT(cfg.height, 0);
  FF_CHECK_GT(cfg.fps, 0);
  FF_CHECK(cfg.min_qp >= 0 && cfg.max_qp <= 51 && cfg.min_qp <= cfg.max_qp);
  FF_CHECK_GE(cfg.gop_size, 1);
  qp_ = std::clamp(qp_, cfg.min_qp, cfg.max_qp);
}

std::string Encoder::EncodeFrame(const video::Frame& frame,
                                 bool force_iframe) {
  FF_CHECK_EQ(frame.width(), cfg_.width);
  FF_CHECK_EQ(frame.height(), cfg_.height);

  const YuvImage cur = RgbToYuv420(frame, pad_w_, pad_h_);
  const bool iframe =
      force_iframe || !have_ref_ || (frame_idx_ % cfg_.gop_size == 0);
  const double qstep = QStep(qp_);

  YuvImage recon;
  recon.w = pad_w_;
  recon.h = pad_h_;
  recon.y.resize(cur.y.size());
  recon.cb.resize(cur.cb.size());
  recon.cr.resize(cur.cr.size());

  BitWriter bw;
  bw.PutBit(iframe ? 1 : 0);
  bw.PutBits(static_cast<std::uint32_t>(qp_), 6);

  stats_ = FrameStats{};
  stats_.is_iframe = iframe;
  stats_.qp = qp_;

  const std::int64_t cw = pad_w_ / 2;
  for (std::int64_t my = 0; my < pad_h_; my += 16) {
    for (std::int64_t mx = 0; mx < pad_w_; mx += 16) {
      const MbGeometry g{mx, my, mx / 2, my / 2};
      Mv mv{};
      if (!iframe) {
        mv = MotionSearch(cur, ref_, mx, my, cfg_.search_range);
      }

      // Gather predictions for the 6 blocks.
      Block pred[6];
      if (iframe) {
        for (auto& p : pred) p = FlatBlock(128.0f);
      } else {
        int bi = 0;
        for (const auto& [ox, oy] :
             {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
          pred[bi++] = GetBlock8(ref_.y.data(), pad_w_, mx + mv.dx + ox,
                                 my + mv.dy + oy);
        }
        pred[4] = GetBlock8(ref_.cb.data(), cw, g.cx + mv.dx / 2,
                            g.cy + mv.dy / 2);
        pred[5] = GetBlock8(ref_.cr.data(), cw, g.cx + mv.dx / 2,
                            g.cy + mv.dy / 2);
      }

      // Residuals.
      Block cur_blocks[6];
      {
        int bi = 0;
        for (const auto& [ox, oy] :
             {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
          cur_blocks[bi++] = GetBlock8(cur.y.data(), pad_w_, mx + ox, my + oy);
        }
        cur_blocks[4] = GetBlock8(cur.cb.data(), cw, g.cx, g.cy);
        cur_blocks[5] = GetBlock8(cur.cr.data(), cw, g.cx, g.cy);
      }
      Block residual[6];
      bool all_zero = true;
      QuantBlock qtest{};
      for (int b = 0; b < 6; ++b) {
        for (std::size_t i = 0; i < 64; ++i) {
          residual[b][i] = cur_blocks[b][i] - pred[b][i];
        }
        if (all_zero) {
          const Block freq = ForwardDct(residual[b]);
          qtest = Quantize(freq, qstep);
          for (const auto v : qtest) {
            if (v != 0) {
              all_zero = false;
              break;
            }
          }
        }
      }

      // Skip mode: P-frame, zero motion, nothing survives quantization.
      if (!iframe && mv.dx == 0 && mv.dy == 0 && all_zero) {
        bw.PutBit(1);  // skip
        ++stats_.skip_blocks;
        int bi = 0;
        for (const auto& [ox, oy] :
             {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
          PutBlock8(recon.y.data(), pad_w_, mx + ox, my + oy, pred[bi++]);
        }
        PutBlock8(recon.cb.data(), cw, g.cx, g.cy, pred[4]);
        PutBlock8(recon.cr.data(), cw, g.cx, g.cy, pred[5]);
        continue;
      }

      if (!iframe) {
        bw.PutBit(0);  // coded
        bw.PutSe(static_cast<std::int32_t>(mv.dx));
        bw.PutSe(static_cast<std::int32_t>(mv.dy));
      }
      ++stats_.coded_blocks;

      int bi = 0;
      for (const auto& [ox, oy] : {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
        const Block rec_res = CodeBlock(bw, residual[bi], qstep);
        ReconstructBlock(recon.y.data(), pad_w_, mx + ox, my + oy, pred[bi],
                         rec_res);
        ++bi;
      }
      const Block rec_cb = CodeBlock(bw, residual[4], qstep);
      ReconstructBlock(recon.cb.data(), cw, g.cx, g.cy, pred[4], rec_cb);
      const Block rec_cr = CodeBlock(bw, residual[5], qstep);
      ReconstructBlock(recon.cr.data(), cw, g.cx, g.cy, pred[5], rec_cr);
    }
  }

  std::string chunk = bw.Finish();
  stats_.bytes = chunk.size();
  total_bytes_ += chunk.size();
  ++frame_idx_;
  ref_ = std::move(recon);
  have_ref_ = true;
  UpdateRateControl(static_cast<std::uint64_t>(chunk.size()) * 8, iframe);
  return chunk;
}

void Encoder::UpdateRateControl(std::uint64_t frame_bits, bool was_iframe) {
  if (cfg_.target_bitrate_bps <= 0) return;
  const double target =
      cfg_.target_bitrate_bps / static_cast<double>(cfg_.fps);
  // I-frames legitimately cost more; budget them a multiple of the mean so
  // rate control does not overreact once per GOP.
  const double weight =
      was_iframe ? std::min<double>(4.0, static_cast<double>(cfg_.gop_size))
                 : 0.8;
  cum_bits_ += static_cast<double>(frame_bits);
  cum_target_bits_ += target;
  const double frame_ratio = static_cast<double>(frame_bits) / (target * weight);
  const double drift_ratio = cum_bits_ / cum_target_bits_;
  const double adjust =
      1.6 * std::log2(std::max(0.05, frame_ratio)) +
      1.2 * std::log2(std::clamp(drift_ratio, 0.25, 4.0));
  qp_ += static_cast<int>(std::lround(std::clamp(adjust, -3.0, 3.0)));
  qp_ = std::clamp(qp_, cfg_.min_qp, cfg_.max_qp);
}

double Encoder::AverageBitrateBps() const {
  if (frame_idx_ == 0) return 0.0;
  const double seconds =
      static_cast<double>(frame_idx_) / static_cast<double>(cfg_.fps);
  return static_cast<double>(total_bytes_) * 8.0 / seconds;
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

Decoder::Decoder(std::int64_t width, std::int64_t height)
    : width_(width),
      height_(height),
      pad_w_(PadTo16(width)),
      pad_h_(PadTo16(height)) {
  FF_CHECK_GT(width, 0);
  FF_CHECK_GT(height, 0);
}

video::Frame Decoder::DecodeFrame(std::string_view chunk) {
  BitReader br(chunk);
  const bool iframe = br.GetBit() == 1;
  const int qp = static_cast<int>(br.GetBits(6));
  const double qstep = QStep(qp);
  FF_CHECK_MSG(iframe || have_ref_, "P-frame without a reference");

  YuvImage recon;
  recon.w = pad_w_;
  recon.h = pad_h_;
  recon.y.resize(static_cast<std::size_t>(pad_w_ * pad_h_));
  recon.cb.resize(static_cast<std::size_t>((pad_w_ / 2) * (pad_h_ / 2)));
  recon.cr.resize(recon.cb.size());

  const std::int64_t cw = pad_w_ / 2;
  for (std::int64_t my = 0; my < pad_h_; my += 16) {
    for (std::int64_t mx = 0; mx < pad_w_; mx += 16) {
      const std::int64_t cx = mx / 2, cy = my / 2;
      Mv mv{};
      bool skip = false;
      if (!iframe) {
        skip = br.GetBit() == 1;
        if (!skip) {
          mv.dx = br.GetSe();
          mv.dy = br.GetSe();
        }
      }

      Block pred[6];
      if (iframe) {
        for (auto& p : pred) p = FlatBlock(128.0f);
      } else {
        int bi = 0;
        for (const auto& [ox, oy] :
             {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
          pred[bi++] = GetBlock8(ref_.y.data(), pad_w_, mx + mv.dx + ox,
                                 my + mv.dy + oy);
        }
        pred[4] = GetBlock8(ref_.cb.data(), cw, cx + mv.dx / 2, cy + mv.dy / 2);
        pred[5] = GetBlock8(ref_.cr.data(), cw, cx + mv.dx / 2, cy + mv.dy / 2);
      }

      if (skip) {
        int bi = 0;
        for (const auto& [ox, oy] :
             {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
          PutBlock8(recon.y.data(), pad_w_, mx + ox, my + oy, pred[bi++]);
        }
        PutBlock8(recon.cb.data(), cw, cx, cy, pred[4]);
        PutBlock8(recon.cr.data(), cw, cx, cy, pred[5]);
        continue;
      }

      int bi = 0;
      for (const auto& [ox, oy] : {std::pair{0, 0}, {8, 0}, {0, 8}, {8, 8}}) {
        const Block res = DecodeBlock(br, qstep);
        ReconstructBlock(recon.y.data(), pad_w_, mx + ox, my + oy, pred[bi],
                         res);
        ++bi;
      }
      const Block res_cb = DecodeBlock(br, qstep);
      ReconstructBlock(recon.cb.data(), cw, cx, cy, pred[4], res_cb);
      const Block res_cr = DecodeBlock(br, qstep);
      ReconstructBlock(recon.cr.data(), cw, cx, cy, pred[5], res_cr);
    }
  }

  ref_ = std::move(recon);
  have_ref_ = true;
  return Yuv420ToRgb(ref_, width_, height_);
}

}  // namespace ff::codec
