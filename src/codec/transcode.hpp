// "Compress everything" support: a FrameSource that passes every frame of an
// inner source through encode->decode at a target bitrate, counting real
// bits. Running a filter on this source is exactly the paper's baseline of
// uploading the heavily compressed stream and filtering in the cloud (§4.3).
#pragma once

#include <memory>
#include <optional>

#include "codec/codec.hpp"
#include "video/source.hpp"

namespace ff::codec {

class TranscodedSource : public video::FrameSource {
 public:
  TranscodedSource(video::FrameSource& inner, const EncoderConfig& cfg)
      : inner_(inner), cfg_(cfg), encoder_(cfg), decoder_(cfg.width, cfg.height) {}

  std::optional<video::Frame> Next() override {
    auto frame = inner_.Next();
    if (!frame) return std::nullopt;
    const std::string chunk = encoder_.EncodeFrame(*frame);
    video::Frame decoded = decoder_.DecodeFrame(chunk);
    decoded.index = frame->index;
    return decoded;
  }

  void Reset() override {
    inner_.Reset();
    encoder_ = Encoder(cfg_);
    decoder_ = Decoder(cfg_.width, cfg_.height);
  }

  std::int64_t width() const override { return cfg_.width; }
  std::int64_t height() const override { return cfg_.height; }
  std::int64_t fps() const override { return cfg_.fps; }

  std::uint64_t total_bytes() const { return encoder_.total_bytes(); }
  double AverageBitrateBps() const { return encoder_.AverageBitrateBps(); }
  const Encoder& encoder() const { return encoder_; }

 private:
  video::FrameSource& inner_;
  EncoderConfig cfg_;
  Encoder encoder_;
  Decoder decoder_;
};

}  // namespace ff::codec
