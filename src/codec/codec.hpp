// A block-transform video codec — the H.264 stand-in (see
// docs/ARCHITECTURE.md, "Codec: the H.264 stand-in").
//
// Structure per frame:
//   * I-frames: every macroblock is intra-coded against a flat 128
//     prediction (the DC coefficient carries the block mean).
//   * P-frames: per-16x16-macroblock diamond motion search on luma against
//     the previous *reconstructed* frame, skip mode for static blocks,
//     DCT + flat quantization of the residual, Exp-Golomb entropy coding.
//   * Closed-loop rate control nudges QP each frame toward a target bitrate.
//
// The encoder's reference frame is produced by the same reconstruction code
// path the decoder runs, so encode->decode round trips are exact (tested).
// What matters for the paper's experiments is that (a) bits are really
// counted, and (b) lowering bitrate destroys small/fine details first —
// both properties of this design.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "codec/yuv.hpp"
#include "video/frame.hpp"

namespace ff::codec {

struct EncoderConfig {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::int64_t fps = 15;
  // Target bitrate in bits/second; 0 disables rate control (constant QP).
  double target_bitrate_bps = 0;
  int initial_qp = 32;
  int min_qp = 2;
  int max_qp = 50;
  // I-frame cadence. 15 = one intra refresh per second at 15 fps.
  int gop_size = 15;
  // Motion search range in pixels (each direction).
  int search_range = 12;
};

struct FrameStats {
  bool is_iframe = false;
  int qp = 0;
  std::uint64_t bytes = 0;
  std::int64_t skip_blocks = 0;
  std::int64_t coded_blocks = 0;
};

class Encoder {
 public:
  explicit Encoder(const EncoderConfig& cfg);

  // Encodes one frame and returns its bitstream chunk. `force_iframe`
  // restarts prediction — the FilterForward uplink uses it at the start of
  // each event segment, where the previous uploaded frame is not the
  // temporal predecessor.
  std::string EncodeFrame(const video::Frame& frame, bool force_iframe = false);

  const FrameStats& last_stats() const { return stats_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::int64_t frames_encoded() const { return frame_idx_; }
  const EncoderConfig& config() const { return cfg_; }

  // Average bitrate so far, assuming cfg.fps frames/second.
  double AverageBitrateBps() const;

 private:
  void UpdateRateControl(std::uint64_t frame_bits, bool was_iframe);

  EncoderConfig cfg_;
  std::int64_t pad_w_, pad_h_;
  YuvImage ref_;  // reconstructed reference
  bool have_ref_ = false;
  int qp_;
  std::int64_t frame_idx_ = 0;
  std::uint64_t total_bytes_ = 0;
  double cum_target_bits_ = 0;
  double cum_bits_ = 0;
  FrameStats stats_;
};

class Decoder {
 public:
  // The decoder is configured with the stream geometry (out-of-band, like a
  // container header would carry).
  Decoder(std::int64_t width, std::int64_t height);

  video::Frame DecodeFrame(std::string_view chunk);

 private:
  std::int64_t width_, height_, pad_w_, pad_h_;
  YuvImage ref_;
  bool have_ref_ = false;
};

}  // namespace ff::codec
