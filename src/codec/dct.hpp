// 8x8 DCT-II transform + flat quantization — the lossy core of the codec.
#pragma once

#include <array>
#include <cstdint>

namespace ff::codec {

using Block = std::array<float, 64>;        // 8x8 spatial, row-major
using QuantBlock = std::array<std::int32_t, 64>;  // quantized coefficients

// Forward 8x8 DCT-II (orthonormal).
Block ForwardDct(const Block& spatial);

// Inverse 8x8 DCT-II.
Block InverseDct(const Block& freq);

// Quantizer step for QP in [0, 51]; doubles every 6 QP like H.264.
double QStep(int qp);

// Uniform (flat-matrix) quantization with round-to-nearest.
QuantBlock Quantize(const Block& freq, double qstep);
Block Dequantize(const QuantBlock& q, double qstep);

// Zigzag scan order: index i of the scan visits zigzag[i] in the block.
const std::array<int, 64>& ZigzagOrder();

}  // namespace ff::codec
