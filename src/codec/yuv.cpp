#include "codec/yuv.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ff::codec {

namespace {

std::uint8_t Clamp8(double v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
}

}  // namespace

YuvImage RgbToYuv420(const video::Frame& f, std::int64_t pad_w,
                     std::int64_t pad_h) {
  FF_CHECK(pad_w >= f.width() && pad_h >= f.height());
  FF_CHECK(pad_w % 16 == 0 && pad_h % 16 == 0);
  YuvImage img;
  img.w = pad_w;
  img.h = pad_h;
  img.y.resize(static_cast<std::size_t>(pad_w * pad_h));
  img.cb.resize(static_cast<std::size_t>((pad_w / 2) * (pad_h / 2)));
  img.cr.resize(img.cb.size());

  // Full-range BT.601 luma, with edge replication into the padding.
  std::vector<double> cb_full(static_cast<std::size_t>(pad_w * pad_h));
  std::vector<double> cr_full(cb_full.size());
  for (std::int64_t yy = 0; yy < pad_h; ++yy) {
    const std::int64_t sy = std::min(yy, f.height() - 1);
    for (std::int64_t xx = 0; xx < pad_w; ++xx) {
      const std::int64_t sx = std::min(xx, f.width() - 1);
      const auto i = static_cast<std::size_t>(sy * f.width() + sx);
      const double r = f.r()[i], g = f.g()[i], b = f.b()[i];
      const auto o = static_cast<std::size_t>(yy * pad_w + xx);
      img.y[o] = Clamp8(0.299 * r + 0.587 * g + 0.114 * b);
      cb_full[o] = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b;
      cr_full[o] = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b;
    }
  }
  // 2x2 average chroma subsampling.
  const std::int64_t cw = pad_w / 2;
  for (std::int64_t cy = 0; cy < pad_h / 2; ++cy) {
    for (std::int64_t cx = 0; cx < cw; ++cx) {
      const auto i00 = static_cast<std::size_t>((2 * cy) * pad_w + 2 * cx);
      const auto i01 = i00 + 1;
      const auto i10 = i00 + static_cast<std::size_t>(pad_w);
      const auto i11 = i10 + 1;
      const auto o = static_cast<std::size_t>(cy * cw + cx);
      img.cb[o] = Clamp8((cb_full[i00] + cb_full[i01] + cb_full[i10] +
                          cb_full[i11]) / 4.0);
      img.cr[o] = Clamp8((cr_full[i00] + cr_full[i01] + cr_full[i10] +
                          cr_full[i11]) / 4.0);
    }
  }
  return img;
}

video::Frame Yuv420ToRgb(const YuvImage& img, std::int64_t out_w,
                         std::int64_t out_h) {
  FF_CHECK(out_w <= img.w && out_h <= img.h);
  video::Frame f(out_w, out_h);
  const std::int64_t cw = img.chroma_w();
  for (std::int64_t yy = 0; yy < out_h; ++yy) {
    for (std::int64_t xx = 0; xx < out_w; ++xx) {
      const double y = img.y[static_cast<std::size_t>(yy * img.w + xx)];
      const auto ci = static_cast<std::size_t>((yy / 2) * cw + xx / 2);
      const double cb = static_cast<double>(img.cb[ci]) - 128.0;
      const double cr = static_cast<double>(img.cr[ci]) - 128.0;
      f.Set(xx, yy,
            video::Rgb{Clamp8(y + 1.402 * cr),
                       Clamp8(y - 0.344136 * cb - 0.714136 * cr),
                       Clamp8(y + 1.772 * cb)});
    }
  }
  return f;
}

}  // namespace ff::codec
