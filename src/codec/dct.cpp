#include "codec/dct.hpp"

#include <cmath>

namespace ff::codec {

namespace {

// Orthonormal DCT-II basis: A[u][x] = c(u) * cos((2x+1) u pi / 16),
// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8). Then F = A f A^T and f = A^T F A.
struct Basis {
  float a[8][8];
  Basis() {
    constexpr double kPi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double c = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        a[u][x] = static_cast<float>(
            c * std::cos((2.0 * x + 1.0) * u * kPi / 16.0));
      }
    }
  }
};

const Basis& B() {
  static const Basis basis;
  return basis;
}

}  // namespace

Block ForwardDct(const Block& spatial) {
  const auto& a = B().a;
  // tmp = A * f
  float tmp[8][8];
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int k = 0; k < 8; ++k) acc += a[u][k] * spatial[static_cast<std::size_t>(k * 8 + x)];
      tmp[u][x] = acc;
    }
  }
  // F = tmp * A^T
  Block out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0;
      for (int k = 0; k < 8; ++k) acc += tmp[u][k] * a[v][k];
      out[static_cast<std::size_t>(u * 8 + v)] = acc;
    }
  }
  return out;
}

Block InverseDct(const Block& freq) {
  const auto& a = B().a;
  // tmp = A^T * F
  float tmp[8][8];
  for (int x = 0; x < 8; ++x) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0;
      for (int k = 0; k < 8; ++k) acc += a[k][x] * freq[static_cast<std::size_t>(k * 8 + v)];
      tmp[x][v] = acc;
    }
  }
  // f = tmp * A
  Block out{};
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int k = 0; k < 8; ++k) acc += tmp[x][k] * a[k][y];
      out[static_cast<std::size_t>(x * 8 + y)] = acc;
    }
  }
  return out;
}

double QStep(int qp) {
  // 0.625 * 2^(qp/6): qp 0 -> fine, qp 51 -> step ~230 (obliterating).
  return 0.625 * std::pow(2.0, static_cast<double>(qp) / 6.0);
}

QuantBlock Quantize(const Block& freq, double qstep) {
  QuantBlock q{};
  for (std::size_t i = 0; i < 64; ++i) {
    q[i] = static_cast<std::int32_t>(
        std::lround(static_cast<double>(freq[i]) / qstep));
  }
  return q;
}

Block Dequantize(const QuantBlock& q, double qstep) {
  Block f{};
  for (std::size_t i = 0; i < 64; ++i) {
    f[i] = static_cast<float>(static_cast<double>(q[i]) * qstep);
  }
  return f;
}

const std::array<int, 64>& ZigzagOrder() {
  static const std::array<int, 64> order = [] {
    std::array<int, 64> z{};
    int idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y) {
          z[static_cast<std::size_t>(idx++)] = y * 8 + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x) {
          z[static_cast<std::size_t>(idx++)] = (s - x) * 8 + x;
        }
      }
    }
    return z;
  }();
  return order;
}

}  // namespace ff::codec
