// BT.601 RGB <-> YCbCr conversion with 4:2:0 chroma subsampling.
#pragma once

#include <cstdint>
#include <vector>

#include "video/frame.hpp"

namespace ff::codec {

// Planar 4:2:0 image. Luma is w x h; chroma planes are (w/2) x (h/2).
// Dimensions must be even (the codec pads to multiples of 16 before use).
struct YuvImage {
  std::int64_t w = 0, h = 0;
  std::vector<std::uint8_t> y, cb, cr;

  std::int64_t chroma_w() const { return w / 2; }
  std::int64_t chroma_h() const { return h / 2; }
};

// Converts and pads to `pad_w` x `pad_h` (>= frame dims, multiples of 16) by
// replicating edge pixels. Chroma is the mean of each 2x2 luma quad.
YuvImage RgbToYuv420(const video::Frame& f, std::int64_t pad_w,
                     std::int64_t pad_h);

// Converts back, cropping to `out_w` x `out_h`.
video::Frame Yuv420ToRgb(const YuvImage& img, std::int64_t out_w,
                         std::int64_t out_h);

}  // namespace ff::codec
