#include "codec/bitstream.hpp"

#include <bit>

namespace ff::codec {

void BitWriter::PutBit(std::uint32_t b) {
  acc_ = (acc_ << 1) | (b & 1u);
  ++acc_bits_;
  ++bit_count_;
  if (acc_bits_ == 8) {
    bytes_.push_back(static_cast<char>(acc_ & 0xFFu));
    acc_ = 0;
    acc_bits_ = 0;
  }
}

void BitWriter::PutBits(std::uint32_t v, int n) {
  FF_CHECK(n >= 0 && n <= 32);
  for (int i = n - 1; i >= 0; --i) PutBit((v >> i) & 1u);
}

void BitWriter::PutUe(std::uint32_t v) {
  // Encode v+1 with floor(log2(v+1)) leading zeros.
  const std::uint32_t code = v + 1;
  const int bits = std::bit_width(code);
  for (int i = 0; i < bits - 1; ++i) PutBit(0);
  PutBits(code, bits);
}

void BitWriter::PutSe(std::int32_t v) {
  const std::uint32_t mapped =
      v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
            : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  PutUe(mapped);
}

std::string BitWriter::Finish() {
  while (acc_bits_ != 0) PutBit(0);
  return std::move(bytes_);
}

std::uint32_t BitReader::GetBit() {
  FF_CHECK_MSG(pos_ < data_.size() * 8, "bitstream overrun");
  const std::size_t byte = pos_ >> 3;
  const int shift = 7 - static_cast<int>(pos_ & 7);
  ++pos_;
  return (static_cast<std::uint8_t>(data_[byte]) >> shift) & 1u;
}

std::uint32_t BitReader::GetBits(int n) {
  FF_CHECK(n >= 0 && n <= 32);
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | GetBit();
  return v;
}

std::uint32_t BitReader::GetUe() {
  int zeros = 0;
  while (GetBit() == 0) {
    ++zeros;
    FF_CHECK_MSG(zeros <= 32, "malformed Exp-Golomb code");
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | GetBit();
  return v - 1;
}

std::int32_t BitReader::GetSe() {
  const std::uint32_t u = GetUe();
  if (u & 1u) return static_cast<std::int32_t>((u + 1) / 2);
  return -static_cast<std::int32_t>(u / 2);
}

}  // namespace ff::codec
