// Fig. 2 reproduction: the three microclassifier architectures with the
// exact activation dimensions the paper quotes for 1920x1080 input
// (33x60x1024 into the full-frame detector, 67x120x512 into the localized
// classifiers, 34x60x32 after the stride-2 separable conv, ...). Shape
// inference only — no forward passes — so this runs at paper resolution.
#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/microclassifier.hpp"
#include "dnn/feature_extractor.hpp"
#include "util/table.hpp"

using namespace ff;

namespace {

void PrintTrace(const char* title, core::Microclassifier& mc) {
  std::printf("--- %s ---\n", title);
  std::printf("input (tap %s%s): %s\n", mc.config().tap.c_str(),
              mc.config().pixel_crop ? ", cropped" : "",
              mc.input_shape().ToString().c_str());
  util::Table t({"layer", "output", "multiply-adds"});
  // The windowed MC's concat layer reshapes a window-sized batch; trace it
  // with one full window in flight.
  nn::Shape trace_in = mc.input_shape();
  if (const auto* win = dynamic_cast<const core::WindowedLocalizedMc*>(&mc)) {
    trace_in.n = win->window();
  }
  const auto trace = mc.net().CostTrace(trace_in);
  std::uint64_t total = 0;
  for (const auto& lc : trace) {
    t.AddRow({lc.name, lc.out_shape.ToString(),
              std::to_string(lc.macs)});
    total += lc.macs;
  }
  t.Print(std::cout);
  std::printf("marginal multiply-adds per frame: %.2f M\n\n",
              static_cast<double>(mc.MarginalMacsPerFrame()) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 2: microclassifier architectures at 1920x1080 ===\n\n");
  bench::JsonResult json("fig2_architectures",
                         bench::JsonResult::PathFromArgs(argc, argv));
  const std::int64_t H = 1080, W = 1920;
  dnn::FeatureExtractor fx({.include_classifier = false});
  fx.RequestTap(dnn::kMidTap);
  fx.RequestTap(dnn::kLateTap);

  const nn::Shape late = fx.TapShape(dnn::kLateTap, H, W);
  const nn::Shape mid = fx.TapShape(dnn::kMidTap, H, W);
  std::printf("base DNN taps: conv5_6/sep -> %s (paper: [1,1024,33,60])\n",
              late.ToString().c_str());
  std::printf("               conv4_2/sep -> %s (paper: [1,512,67,120])\n\n",
              mid.ToString().c_str());

  core::FullFrameObjectDetectorMc ff({.name = "full_frame",
                                      .tap = dnn::kLateTap},
                                     fx, H, W);
  PrintTrace("Fig. 2a: full-frame object detector", ff);

  core::LocalizedBinaryClassifierMc loc({.name = "localized",
                                         .tap = dnn::kMidTap},
                                        fx, H, W);
  PrintTrace("Fig. 2b: localized binary classifier", loc);

  core::WindowedLocalizedMc win({.name = "windowed", .tap = dnn::kMidTap},
                                fx, H, W);
  PrintTrace("Fig. 2c: windowed, localized binary classifier", win);

  for (const auto* mc : {static_cast<core::Microclassifier*>(&ff),
                         static_cast<core::Microclassifier*>(&loc),
                         static_cast<core::Microclassifier*>(&win)}) {
    json.NewRow();
    json.Row("arch", mc->name());
    json.Row("tap", mc->config().tap);
    json.Row("input_shape", mc->input_shape().ToString());
    json.Row("marginal_mmacs",
             static_cast<double>(mc->MarginalMacsPerFrame()) / 1e6);
  }
  std::printf(
      "windowed MC without the paper's 1x1 buffer reuse: %.2f M "
      "multiply-adds/frame (reuse saves %.2f M)\n",
      static_cast<double>(win.MarginalMacsWithoutReuse()) / 1e6,
      static_cast<double>(win.MarginalMacsWithoutReuse() -
                          win.MarginalMacsPerFrame()) / 1e6);

  std::printf("\nbase DNN cost to conv5_6/sep at 1920x1080: %.2f G "
              "multiply-adds/frame (amortized across all MCs)\n",
              static_cast<double>(fx.MacsPerFrame(H, W)) / 1e9);
  json.Set("windowed_mmacs_without_reuse",
           static_cast<double>(win.MarginalMacsWithoutReuse()) / 1e6);
  json.Set("base_dnn_gmacs", static_cast<double>(fx.MacsPerFrame(H, W)) / 1e9);
  json.Write();
  return 0;
}
