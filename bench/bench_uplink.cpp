// Uplink-plane bench: goodput and retransmit overhead of the
// UplinkClient -> FaultyLink -> DatacenterIngest path as a function of the
// link's datagram loss rate (both directions lossy). Fake-clock driven, so
// the simulated-time goodput numbers are deterministic for a given seed and
// the wall-clock row measures pure protocol CPU cost.
//
// Extra knobs:
//   FF_BENCH_UPLINK_RECORDS  records per loss point (default 400)
//   FF_BENCH_UPLINK_BYTES    serialized record payload bytes (default 4096)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/ingest.hpp"
#include "net/link.hpp"
#include "net/uplink.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ff {
namespace {

constexpr std::uint64_t kFleet = 1;

struct LossPoint {
  double loss = 0.0;
  std::int64_t records = 0;
  std::uint64_t record_bytes = 0;  // useful payload delivered
  std::uint64_t wire_bytes = 0;    // everything offered to the link
  std::int64_t frames_sent = 0;
  std::int64_t retransmits = 0;
  std::int64_t sim_ms = 0;     // fake-clock time to drain
  double wall_seconds = 0.0;   // CPU cost of the protocol machinery
};

LossPoint RunLossPoint(double loss, std::int64_t n_records,
                       std::int64_t record_bytes) {
  auto [edge_end, server_end] = net::LocalLink::MakePair();
  net::FaultConfig data_faults;
  data_faults.drop = loss;
  data_faults.seed = 301;
  net::FaultConfig ack_faults;
  ack_faults.drop = loss;
  ack_faults.seed = 302;
  net::FaultyLink edge_link(*edge_end, data_faults);
  net::FaultyLink server_link(*server_end, ack_faults);

  std::int64_t now = 0;
  net::UplinkConfig cfg;
  cfg.fleet = kFleet;
  cfg.queue_capacity = static_cast<std::size_t>(n_records) + 1;
  cfg.window = 32;
  cfg.max_payload = 1200;
  cfg.rto_ms = 40;
  cfg.clock_ms = [&now] { return now; };
  net::UplinkClient uplink(edge_link, cfg);
  net::DatacenterIngest ingest;
  ingest.AddFleet(kFleet, server_link);

  util::Pcg32 rng(7);
  util::WallTimer wall;
  for (std::int64_t i = 0; i < n_records; ++i) {
    core::EventRecord ev;  // a fixed-size record core; the mc field pads it
    ev.id = i;
    ev.begin = i * 10;
    ev.end = i * 10 + 5;
    ev.stream = i % 4;
    ev.mc.resize(static_cast<std::size_t>(record_bytes));
    for (auto& c : ev.mc) c = static_cast<char>('a' + rng.UniformInt(0, 25));
    uplink.EnqueueEvent(ev);
  }
  while (!uplink.idle()) {
    uplink.Pump(now);
    ingest.Pump();
    now += 5;
    FF_CHECK_MSG(now < 600'000'000, "uplink failed to drain");
  }

  const net::UplinkStats us = uplink.stats();
  LossPoint p;
  p.loss = loss;
  p.records = us.records_sent;
  p.record_bytes = us.record_bytes;
  p.wire_bytes = us.wire_bytes;
  p.frames_sent = us.frames_sent;
  p.retransmits = us.retransmits;
  p.sim_ms = now;
  p.wall_seconds = wall.ElapsedSeconds();
  FF_CHECK_EQ(ingest.stats().events_delivered, n_records);
  return p;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  const std::int64_t n_records =
      util::EnvInt("FF_BENCH_UPLINK_RECORDS", 400);
  const std::int64_t record_bytes =
      util::EnvInt("FF_BENCH_UPLINK_BYTES", 4096);
  bench::JsonResult json("uplink",
                         bench::JsonResult::PathFromArgs(argc, argv));
  json.Set("records", static_cast<double>(n_records));
  json.Set("record_bytes", static_cast<double>(record_bytes));

  std::printf("=== Uplink goodput vs WAN loss ===\n");
  std::printf("records=%lld record_bytes=%lld window=32 rto=40ms "
              "(both directions lossy)\n\n",
              static_cast<long long>(n_records),
              static_cast<long long>(record_bytes));
  std::printf("%8s %12s %12s %12s %10s %12s %10s\n", "loss", "goodput",
              "wire_bytes", "overhead", "retrans", "sim_drain", "cpu_ms");

  for (const double loss : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    const auto p = RunLossPoint(loss, n_records, record_bytes);
    // Goodput: useful record bytes per simulated second on the wire.
    const double goodput_mbps =
        p.sim_ms > 0 ? static_cast<double>(p.record_bytes) * 8.0 /
                           (static_cast<double>(p.sim_ms) * 1000.0)
                     : 0.0;
    // Overhead: total wire bytes per useful record byte (1.0 = free).
    const double overhead = p.record_bytes > 0
                                ? static_cast<double>(p.wire_bytes) /
                                      static_cast<double>(p.record_bytes)
                                : 0.0;
    const double retrans_rate =
        p.frames_sent > 0 ? static_cast<double>(p.retransmits) /
                                static_cast<double>(p.frames_sent)
                          : 0.0;
    std::printf("%7.0f%% %9.2f Mb %12llu %11.3fx %10lld %9lld ms %9.1f\n",
                loss * 100, goodput_mbps,
                static_cast<unsigned long long>(p.wire_bytes), overhead,
                static_cast<long long>(p.retransmits),
                static_cast<long long>(p.sim_ms), p.wall_seconds * 1e3);
    json.NewRow();
    json.Row("loss", loss);
    json.Row("goodput_mbps", goodput_mbps);
    json.Row("wire_bytes", static_cast<double>(p.wire_bytes));
    json.Row("overhead", overhead);
    json.Row("retransmits", static_cast<double>(p.retransmits));
    json.Row("retransmit_rate", retrans_rate);
    json.Row("sim_drain_ms", static_cast<double>(p.sim_ms));
    json.Row("cpu_seconds", p.wall_seconds);
  }
  json.Write();
  return 0;
}
