// Store-plane bench: cost of durability for the edge archive (paper §3.2).
// Sweeps the archival path over both ArchiveBackends — in-RAM MemoryArchive
// vs the memory-mapped on-disk PackArchive — and reports:
//
//   * append throughput (frames/s and archived MB/s), encode included, for
//     gop 1 and gop 8, with and without fdatasync-per-append;
//   * reopen (crash-recovery) latency of the resulting pack directory;
//   * demand-fetch latency of a 16-frame clip as the archive grows.
//
// Synthetic frames, fixed seeds: deterministic work, wall-clock timings.
//
// Extra knobs:
//   FF_BENCH_STORE_FRAMES  frames per append run (default 240)
//   FF_BENCH_STORE_WIDTH   frame width (default 192; height = 3/4 width)
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/edge_store.hpp"
#include "util/timer.hpp"
#include "video/frame.hpp"

namespace ff {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ff_bench_store_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

video::Frame BenchFrame(std::int64_t w, std::int64_t h, std::int64_t i) {
  video::Frame f(w, h);
  f.FillRect((i * 7) % w, (i * 5) % h, w / 4, h / 4,
             {static_cast<std::uint8_t>(50 + i * 11), 130, 60});
  f.FillRect((i * 3) % w, (i * 13) % h, w / 6, h / 6,
             {200, static_cast<std::uint8_t>(i * 17), 90});
  f.index = i;
  return f;
}

struct AppendPoint {
  std::string backend;
  std::int64_t gop = 1;
  bool fsync = false;
  double seconds = 0.0;
  std::uint64_t stored_bytes = 0;
  double reopen_ms = 0.0;  // pack only
};

AppendPoint RunAppend(const std::string& backend, std::int64_t frames,
                      std::int64_t width, std::int64_t gop, bool fsync) {
  const std::int64_t height = width * 3 / 4;
  std::optional<TempDir> dir;
  core::EdgeStoreConfig cfg;
  cfg.capacity_frames = frames;  // no eviction inside the run
  cfg.gop = gop;
  if (backend == "pack") {
    dir.emplace("append");
    cfg.dir = dir->str();
    cfg.fsync_each_append = fsync;
  }
  AppendPoint p;
  p.backend = backend;
  p.gop = gop;
  p.fsync = fsync;
  {
    core::EdgeStore store(cfg);
    util::WallTimer timer;
    for (std::int64_t i = 0; i < frames; ++i) {
      store.Archive(BenchFrame(width, height, i));
    }
    p.seconds = timer.ElapsedSeconds();
    p.stored_bytes = store.stored_bytes();
  }  // destructor seals the active segment
  if (backend == "pack") {
    util::WallTimer timer;
    core::EdgeStore reopened(cfg);
    FF_CHECK_EQ(reopened.end_available(), frames);
    FF_CHECK_MSG(reopened.recovery()->clean(),
                 reopened.recovery()->ToString());
    p.reopen_ms = timer.ElapsedSeconds() * 1e3;
  }
  return p;
}

struct FetchPoint {
  std::string backend;
  std::int64_t archive_frames = 0;
  double fetch_ms = 0.0;  // one 16-frame clip from the middle
};

FetchPoint RunFetch(const std::string& backend, std::int64_t archive_frames,
                    std::int64_t width) {
  const std::int64_t height = width * 3 / 4;
  std::optional<TempDir> dir;
  core::EdgeStoreConfig cfg;
  cfg.capacity_frames = archive_frames;
  cfg.gop = 8;
  if (backend == "pack") {
    dir.emplace("fetch");
    cfg.dir = dir->str();
  }
  core::EdgeStore store(cfg);
  for (std::int64_t i = 0; i < archive_frames; ++i) {
    store.Archive(BenchFrame(width, height, i));
  }
  const std::int64_t begin = archive_frames / 2;
  const std::int64_t end = begin + 16;
  // Warm once (maps the segment), then time a small batch.
  FF_CHECK_MSG(store.FetchClip(begin, end, 200'000, 15).has_value(),
               "warm fetch failed");
  constexpr int kReps = 5;
  util::WallTimer timer;
  for (int r = 0; r < kReps; ++r) {
    const auto clip = store.FetchClip(begin, end, 200'000, 15);
    FF_CHECK_EQ(clip->end - clip->begin, 16);
  }
  FetchPoint p;
  p.backend = backend;
  p.archive_frames = archive_frames;
  p.fetch_ms = timer.ElapsedSeconds() * 1e3 / kReps;
  return p;
}

}  // namespace
}  // namespace ff

int main(int argc, char** argv) {
  using namespace ff;
  const std::int64_t frames = util::EnvInt("FF_BENCH_STORE_FRAMES", 240);
  const std::int64_t width = util::EnvInt("FF_BENCH_STORE_WIDTH", 192);
  bench::JsonResult json("store",
                         bench::JsonResult::PathFromArgs(argc, argv));
  json.Set("frames", static_cast<double>(frames));
  json.Set("width", static_cast<double>(width));

  std::printf("=== Edge archive: cost of durability ===\n");
  std::printf("frames=%lld width=%lld (append timings include encode)\n\n",
              static_cast<long long>(frames), static_cast<long long>(width));

  std::printf("--- append throughput ---\n");
  std::printf("%8s %5s %7s %10s %12s %12s %10s\n", "backend", "gop", "fsync",
              "frames/s", "archive MB/s", "stored", "reopen ms");
  struct Case {
    const char* backend;
    std::int64_t gop;
    bool fsync;
  };
  const Case cases[] = {{"memory", 1, false}, {"memory", 8, false},
                        {"pack", 1, false},   {"pack", 8, false},
                        {"pack", 8, true}};
  for (const Case& c : cases) {
    const auto p = RunAppend(c.backend, frames, width, c.gop, c.fsync);
    const double fps = static_cast<double>(frames) / p.seconds;
    const double mbps =
        static_cast<double>(p.stored_bytes) / 1e6 / p.seconds;
    std::printf("%8s %5lld %7s %10.1f %12.2f %11.1fK %10.2f\n", c.backend,
                static_cast<long long>(c.gop), c.fsync ? "yes" : "no", fps,
                mbps, static_cast<double>(p.stored_bytes) / 1e3,
                p.reopen_ms);
    json.NewRow();
    json.Row("section", "append");
    json.Row("backend", c.backend);
    json.Row("gop", static_cast<double>(c.gop));
    json.Row("fsync", c.fsync ? 1.0 : 0.0);
    json.Row("frames_per_s", fps);
    json.Row("archive_mb_per_s", mbps);
    json.Row("stored_bytes", static_cast<double>(p.stored_bytes));
    json.Row("reopen_ms", p.reopen_ms);
  }

  std::printf("\n--- demand-fetch latency (16-frame clip, gop 8) ---\n");
  std::printf("%8s %14s %12s\n", "backend", "archive_frames", "fetch ms");
  for (const std::int64_t n : {64, 256, 1024}) {
    if (n > frames * 8) continue;  // keep the big point skippable via env
    for (const char* backend : {"memory", "pack"}) {
      const auto p = RunFetch(backend, n, width);
      std::printf("%8s %14lld %12.2f\n", backend,
                  static_cast<long long>(n), p.fetch_ms);
      json.NewRow();
      json.Row("section", "fetch");
      json.Row("backend", backend);
      json.Row("archive_frames", static_cast<double>(n));
      json.Row("fetch_clip_ms", p.fetch_ms);
    }
  }

  json.Write();
  return 0;
}
