// Fig. 7 reproduction: marginal compute cost (multiply-adds) vs event F1 for
// FilterForward's microclassifiers and NoScope-style discrete classifiers,
// on both datasets/tasks (7a Jackson/Pedestrian, 7b Roadway/People-with-red).
//
// Paper shapes: MCs sit far left (an order of magnitude cheaper — they
// consume feature maps, not pixels) at equal or better F1; the paper
// reports MCs up to 1.3x more accurate at 23x lower marginal cost (Jackson)
// and 1.1x / 11x (Roadway).
//
// MCs and DCs train on the same training video ("0.5 epochs" in the paper;
// our synthetic videos are far shorter, so we take a few passes — sample
// counts remain orders of magnitude below the paper's, see EXPERIMENTS.md).
// The x-axis is analytic multiply-adds at the bench resolution; the
// paper-resolution equivalent is also printed.
// Quantization guardrail (int8 path, ROADMAP): every MC cost point is also
// evaluated with the int8 trunk + int8 MC (same trained weights, same
// threshold); the quantized event F1 must stay within FF_QUANT_F1_EPS
// (default 0.1) of float, or the bench exits nonzero. CI runs this with
// --json so BENCH_quant-style artifacts carry both columns.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "baselines/discrete.hpp"
#include "bench_common.hpp"
#include "nn/serialize.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

struct Row {
  std::string model;
  std::uint64_t macs;
  std::uint64_t macs_paper_res;
  double f1;
  double recall;
  double precision;
  std::optional<double> f1_quant;  // MC rows only; DCs have no int8 path
};

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  // Fig. 7 trains many models; default to a slightly smaller split than the
  // other benches unless overridden.
  bp.train_frames = util::EnvInt("FF_BENCH_TRAIN_FRAMES", 1600);
  bp.test_frames = util::EnvInt("FF_BENCH_TEST_FRAMES", 700);
  bench::PrintHeader("Fig. 7: multiply-adds vs event F1 (MCs vs DCs)", bp);
  bench::JsonResult json("fig7_cost_accuracy",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);

  const std::int64_t n_dcs = util::EnvInt("FF_BENCH_DC_COUNT", 2);
  // Declared accuracy epsilon for the int8 path: quantized event F1 at every
  // MC cost point must stay within this of float, or the run fails.
  const double quant_eps = util::EnvDouble("FF_QUANT_F1_EPS", 0.1);
  json.Set("quant_f1_eps", quant_eps);
  std::vector<std::string> quant_violations;

  for (const auto profile :
       {video::Profile::kJackson, video::Profile::kRoadway}) {
    const bool jackson = profile == video::Profile::kJackson;
    std::printf("--- Fig. 7%s: %s ---\n", jackson ? "a" : "b",
                jackson ? "Jackson / Pedestrian" : "Roadway / People with red");
    const video::SyntheticDataset train_ds(bench::TrainSpec(profile, bp));
    const video::SyntheticDataset test_ds(bench::TestSpec(profile, bp));
    const std::int64_t H = train_ds.spec().height;
    const std::int64_t W = train_ds.spec().width;
    const std::int64_t paper_h = jackson ? 1080 : 850;
    const std::int64_t paper_w = jackson ? 1920 : 2048;
    const std::string tap = bench::TapForScale(W);
    std::vector<Row> rows;

    // --- Microclassifiers (spatial crops per Fig. 3c) ---
    for (const auto& [arch, epochs] :
         {std::pair{"full_frame", 6.0}, {"localized", 2.0}}) {
      std::printf("training MC %s (%.0f passes)...\n", arch, epochs);
      core::McConfig cfg{.name = arch, .tap = tap};
      cfg.pixel_crop = train_ds.spec().crop;
      dnn::FeatureExtractor train_fx({.include_classifier = false});
      auto trained =
          bench::TrainOneMc(arch, train_ds, train_fx, cfg, epochs);

      dnn::FeatureExtractor fx({.include_classifier = false});
      fx.RequestTap(tap);
      train::McScorer scorer(*trained.mc);
      train::StreamDatasetFeatures(
          test_ds, fx, 0, test_ds.n_frames(),
          [&](std::int64_t, const dnn::FeatureMaps& fm) { scorer.Observe(fm); });
      const auto m =
          bench::EvalScores(scorer.Finish(), test_ds, trained.threshold);

      // Same trained weights, same threshold, int8 trunk + int8 MC: the
      // quantized cost point the guardrail below compares against float.
      dnn::FeatureExtractor qfx(dnn::FeatureExtractorConfig{
          {.include_classifier = false}, /*quantize=*/true});
      qfx.RequestTap(tap);
      qfx.CalibrateQuantized(bench::CalibBatch(test_ds, 4));
      core::McConfig qcfg = cfg;
      qcfg.name += "_quant";
      qcfg.quantize = true;
      auto qmc = core::MakeMicroclassifier(arch, qcfg, qfx, H, W);
      nn::DeserializeWeights(qmc->net(),
                             nn::SerializeWeights(trained.mc->net()));
      train::McScorer qscorer(*qmc);
      train::StreamDatasetFeatures(
          test_ds, qfx, 0, test_ds.n_frames(),
          [&](std::int64_t, const dnn::FeatureMaps& fm) {
            qscorer.Observe(fm);
          });
      const auto qm =
          bench::EvalScores(qscorer.Finish(), test_ds, trained.threshold);

      // Paper-resolution marginal cost of the same architecture (built at
      // paper dims with the paper's tap).
      dnn::FeatureExtractor paper_fx({.include_classifier = false});
      core::McConfig paper_cfg{.name = std::string(arch) + "_paper",
                               .tap = std::string(arch) == "full_frame"
                                          ? dnn::kLateTap
                                          : dnn::kMidTap};
      paper_cfg.pixel_crop =
          jackson ? video::JacksonSpec(paper_w, 10).crop
                  : video::RoadwaySpec(paper_w, 10).crop;
      auto paper_mc = core::MakeMicroclassifier(arch, paper_cfg, paper_fx,
                                                paper_h, paper_w);
      rows.push_back({std::string("MC ") + arch,
                      trained.mc->MarginalMacsPerFrame(),
                      paper_mc->MarginalMacsPerFrame(), m.f1, m.event_recall,
                      m.precision, qm.f1});
    }

    // --- Discrete classifiers: representative members of the family ---
    const auto family = baselines::DiscreteClassifierFamily();
    for (std::int64_t i = 0; i < n_dcs && i < static_cast<std::int64_t>(
                                                  family.size());
         ++i) {
      // Spread picks across the family's cost range.
      const auto& spec =
          family[static_cast<std::size_t>(i * (family.size() - 1) /
                                          std::max<std::int64_t>(1, n_dcs - 1))];
      std::printf("training DC %s...\n", spec.name.c_str());
      baselines::DiscreteClassifier dc(spec, H, W);
      train::TrainConfig tc;
      tc.epochs = 2.0;
      tc.lr = 2e-3;
      train::BinaryNetTrainer trainer(dc.net(), tc);
      for (std::int64_t t = 0; t < train_ds.n_frames(); ++t) {
        const video::Frame f = train_ds.RenderFrame(t);
        trainer.AddFrame(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(),
                                            f.width()),
                         train_ds.Label(t));
      }
      trainer.Train();
      const float thr = train::CalibrateThreshold(
          trainer.ScoreCachedFrames(), train_ds.labels(), 5, 2);
      std::vector<float> scores;
      for (std::int64_t t = 0; t < test_ds.n_frames(); ++t) {
        const video::Frame f = test_ds.RenderFrame(t);
        scores.push_back(dc.Infer(dnn::PreprocessRgb(
            f.r(), f.g(), f.b(), f.height(), f.width())));
      }
      const auto m = bench::EvalScores(scores, test_ds, thr);
      rows.push_back({std::string("DC ") + spec.name, dc.MacsPerFrame(),
                      baselines::DiscreteClassifierMacs(spec, paper_h, paper_w),
                      m.f1, m.event_recall, m.precision, std::nullopt});
    }

    util::Table t({"model", "M multiply-adds (bench res)",
                   "M multiply-adds (paper res)", "event F1", "int8 F1",
                   "recall", "precision"});
    for (const auto& r : rows) {
      t.AddRow({r.model, util::Table::Num(static_cast<double>(r.macs) / 1e6, 2),
                util::Table::Num(static_cast<double>(r.macs_paper_res) / 1e6, 1),
                util::Table::Num(r.f1, 3),
                r.f1_quant ? util::Table::Num(*r.f1_quant, 3) : "-",
                util::Table::Num(r.recall, 3),
                util::Table::Num(r.precision, 3)});
      json.NewRow();
      json.Row("dataset", jackson ? "jackson" : "roadway");
      json.Row("model", r.model);
      json.Row("mmacs", static_cast<double>(r.macs) / 1e6);
      json.Row("mmacs_paper_res", static_cast<double>(r.macs_paper_res) / 1e6);
      json.Row("event_f1", r.f1);
      if (r.f1_quant) json.Row("event_f1_quant", *r.f1_quant);
      json.Row("event_recall", r.recall);
      json.Row("precision", r.precision);
      if (r.f1_quant && std::fabs(*r.f1_quant - r.f1) > quant_eps) {
        quant_violations.push_back(
            (jackson ? "jackson/" : "roadway/") + r.model + ": float F1 " +
            util::Table::Num(r.f1, 3) + " vs int8 F1 " +
            util::Table::Num(*r.f1_quant, 3));
      }
    }
    t.Print(std::cout);

    // Summary: best MC vs best DC.
    const Row* best_mc = nullptr;
    const Row* best_dc = nullptr;
    for (const auto& r : rows) {
      if (r.model.rfind("MC", 0) == 0 && (!best_mc || r.f1 > best_mc->f1)) {
        best_mc = &r;
      }
      if (r.model.rfind("DC", 0) == 0 && (!best_dc || r.f1 > best_dc->f1)) {
        best_dc = &r;
      }
    }
    if (best_mc && best_dc && best_dc->f1 > 0) {
      std::printf("\nbest MC vs best DC: %.2fx the accuracy at %.1fx lower "
                  "marginal cost (paper: %s)\n\n",
                  best_mc->f1 / best_dc->f1,
                  static_cast<double>(best_dc->macs) /
                      static_cast<double>(best_mc->macs),
                  jackson ? "1.3x accuracy, 23x cheaper"
                          : "1.1x accuracy, 11x cheaper");
      const std::string prefix = jackson ? "jackson" : "roadway";
      json.Set(prefix + "_mc_dc_f1_ratio", best_mc->f1 / best_dc->f1);
      json.Set(prefix + "_mc_cost_saving_x",
               static_cast<double>(best_dc->macs) /
                   static_cast<double>(best_mc->macs));
    } else {
      std::printf("\n");
    }
  }
  json.Set("quant_guard_violations",
           static_cast<double>(quant_violations.size()));
  json.Write();
  if (!quant_violations.empty()) {
    std::printf("\nQUANT GUARDRAIL FAILED (eps %.3f):\n", quant_eps);
    for (const auto& v : quant_violations) {
      std::printf("  %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("\nquant guardrail: all MC cost points within eps %.3f of "
              "float F1\n", quant_eps);
  return 0;
}
