// Quantized-inference guardrail bench (ROADMAP: int8 path). Two gates, one
// JSON (BENCH_quant.json):
//
//  1. Trunk throughput: the full MobileNet backbone (conv1..conv6/sep) in
//     int8 vs float over identical preprocessed frames. Target: >= 2x on an
//     AVX2 host (the maddubs pointwise path retires ~2 quad-MACs per cycle
//     where the float path retires one 8-wide FMA-less MAC).
//  2. Accuracy: trained MCs evaluated float vs int8 (same weights, same
//     threshold, int8 trunk feeding int8 MCs); event F1 must stay within
//     FF_QUANT_F1_EPS (default 0.1) at every cost point, both datasets.
//
// Exits nonzero if any F1 point breaks the epsilon, so CI can gate on it.
// (The throughput ratio is recorded, not gated: CI machines are noisy and
// may be scalar-only; the checked-in BENCH_quant.json documents the dev-box
// AVX2 number.)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/serialize.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

// Preprocessed (1, 3, H, W) inputs for the throughput loop.
std::vector<nn::Tensor> PreprocessedFrames(const video::SyntheticDataset& ds,
                                           std::int64_t n) {
  std::vector<nn::Tensor> inputs;
  for (std::int64_t i = 0; i < n; ++i) {
    const video::Frame f = ds.RenderFrame(i);
    inputs.push_back(
        dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(), f.width()));
  }
  return inputs;
}

double MeasureTrunkFps(dnn::FeatureExtractor& fx,
                       const std::vector<nn::Tensor>& inputs,
                       std::int64_t reps) {
  (void)fx.Extract(inputs[0]);  // warmup (and int8 auto-calibration)
  util::WallTimer timer;
  std::int64_t frames = 0;
  for (std::int64_t r = 0; r < reps; ++r) {
    for (const auto& in : inputs) {
      (void)fx.Extract(in);
      ++frames;
    }
  }
  return static_cast<double>(frames) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  // MC training is the dominant cost; default to a slightly smaller split
  // than the full fig7 run (same spirit as that bench's reduced defaults).
  bp.train_frames = util::EnvInt("FF_BENCH_TRAIN_FRAMES", 1200);
  bp.test_frames = util::EnvInt("FF_BENCH_TEST_FRAMES", 600);
  bench::PrintHeader("Quantized int8 path: trunk speedup + F1 guardrail", bp);
  bench::JsonResult json("quant",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  const double quant_eps = util::EnvDouble("FF_QUANT_F1_EPS", 0.1);
  json.Set("quant_f1_eps", quant_eps);

  // --- gate 1: trunk throughput -------------------------------------------
  const std::int64_t n_frames = util::EnvInt("FF_BENCH_FRAMES", 3);
  const std::int64_t reps = util::EnvInt("FF_BENCH_REPS", 2);
  json.Set("frames_per_measurement", static_cast<double>(n_frames * reps));
  auto spec = video::JacksonSpec(bp.width, n_frames + 1, 31);
  spec.object_scale = bp.object_scale;
  const video::SyntheticDataset tds(spec);
  const auto inputs = PreprocessedFrames(tds, n_frames);

  dnn::FeatureExtractor ffx({.include_classifier = false});
  ffx.RequestTap("conv6/sep");  // full backbone, as in Fig. 5
  const double float_fps = MeasureTrunkFps(ffx, inputs, reps);

  dnn::FeatureExtractor qfx(dnn::FeatureExtractorConfig{
      {.include_classifier = false}, /*quantize=*/true});
  qfx.RequestTap("conv6/sep");
  qfx.CalibrateQuantized(bench::CalibBatch(tds, 2));
  const double quant_fps = MeasureTrunkFps(qfx, inputs, reps);

  const double speedup = quant_fps / float_fps;
  std::printf("trunk (conv1..conv6/sep, %lldpx): float %.2f fps, int8 %.2f "
              "fps -> %.2fx (target >= 2x on AVX2)\n\n",
              static_cast<long long>(bp.width), float_fps, quant_fps,
              speedup);
  json.Set("trunk_float_fps", float_fps);
  json.Set("trunk_quant_fps", quant_fps);
  json.Set("trunk_speedup", speedup);

  // --- gate 2: event-F1 parity at every MC cost point ---------------------
  std::vector<std::string> violations;
  for (const auto profile :
       {video::Profile::kJackson, video::Profile::kRoadway}) {
    const bool jackson = profile == video::Profile::kJackson;
    const video::SyntheticDataset train_ds(bench::TrainSpec(profile, bp));
    const video::SyntheticDataset test_ds(bench::TestSpec(profile, bp));
    const std::int64_t H = train_ds.spec().height;
    const std::int64_t W = train_ds.spec().width;
    const std::string tap = bench::TapForScale(W);

    for (const auto& [arch, epochs] :
         {std::pair{"full_frame", 6.0}, {"localized", 2.0}}) {
      std::printf("[%s] training MC %s (%.0f passes)...\n",
                  jackson ? "jackson" : "roadway", arch, epochs);
      core::McConfig cfg{.name = arch, .tap = tap};
      cfg.pixel_crop = train_ds.spec().crop;
      dnn::FeatureExtractor train_fx({.include_classifier = false});
      auto trained = bench::TrainOneMc(arch, train_ds, train_fx, cfg, epochs);

      // Float reference.
      dnn::FeatureExtractor fx({.include_classifier = false});
      fx.RequestTap(tap);
      train::McScorer scorer(*trained.mc);
      train::StreamDatasetFeatures(
          test_ds, fx, 0, test_ds.n_frames(),
          [&](std::int64_t, const dnn::FeatureMaps& fm) {
            scorer.Observe(fm);
          });
      const auto fm_ =
          bench::EvalScores(scorer.Finish(), test_ds, trained.threshold);

      // Same weights through the int8 trunk + int8 MC.
      dnn::FeatureExtractor qtfx(dnn::FeatureExtractorConfig{
          {.include_classifier = false}, /*quantize=*/true});
      qtfx.RequestTap(tap);
      qtfx.CalibrateQuantized(bench::CalibBatch(test_ds, 4));
      core::McConfig qcfg = cfg;
      qcfg.name += "_quant";
      qcfg.quantize = true;
      auto qmc = core::MakeMicroclassifier(arch, qcfg, qtfx, H, W);
      nn::DeserializeWeights(qmc->net(),
                             nn::SerializeWeights(trained.mc->net()));
      train::McScorer qscorer(*qmc);
      train::StreamDatasetFeatures(
          test_ds, qtfx, 0, test_ds.n_frames(),
          [&](std::int64_t, const dnn::FeatureMaps& fm) {
            qscorer.Observe(fm);
          });
      const auto qm =
          bench::EvalScores(qscorer.Finish(), test_ds, trained.threshold);

      const double delta = std::fabs(qm.f1 - fm_.f1);
      std::printf("  %s: float F1 %.3f, int8 F1 %.3f (|delta| %.3f, eps "
                  "%.3f)\n",
                  arch, fm_.f1, qm.f1, delta, quant_eps);
      json.NewRow();
      json.Row("dataset", jackson ? "jackson" : "roadway");
      json.Row("model", std::string("MC ") + arch);
      json.Row("mmacs",
               static_cast<double>(trained.mc->MarginalMacsPerFrame()) / 1e6);
      json.Row("event_f1", fm_.f1);
      json.Row("event_f1_quant", qm.f1);
      json.Row("f1_delta", delta);
      if (delta > quant_eps) {
        violations.push_back(std::string(jackson ? "jackson/" : "roadway/") +
                             arch);
      }
    }
  }

  json.Set("quant_guard_violations", static_cast<double>(violations.size()));
  json.Write();
  if (!violations.empty()) {
    std::printf("\nQUANT GUARDRAIL FAILED (eps %.3f):", quant_eps);
    for (const auto& v : violations) std::printf(" %s", v.c_str());
    std::printf("\n");
    return 1;
  }
  std::printf("\nquant guardrail: every cost point within eps %.3f; trunk "
              "speedup %.2fx\n", quant_eps, speedup);
  return 0;
}
