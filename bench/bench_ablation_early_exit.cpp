// Ablation of this implementation's early-exit feature extraction — an
// extension beyond the paper. The paper's extractor evaluates the complete
// base DNN per frame; ours stops at the deepest tap any tenant requested,
// so an edge node whose MCs all read mid-network layers skips the deepest
// (and widest) layers entirely.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace ff;
using bench::BenchParams;

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Ablation: early-exit feature extraction (extension)",
                     bp);
  bench::JsonResult json("ablation_early_exit",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  const std::int64_t n_frames = util::EnvInt("FF_BENCH_FRAMES", 6) + 1;
  auto spec = video::JacksonSpec(bp.width, n_frames + 1, 34);
  const video::SyntheticDataset ds(spec);

  util::Table t({"deepest tap", "stride", "G multiply-adds/frame",
                 "ms/frame", "vs full backbone"});
  double full_ms = 0;
  // Taps from deepest to shallowest; the first row is the paper's behavior.
  for (const std::string& tap : {std::string("conv6/sep"),
                                std::string("conv5_6/sep"),
                                std::string("conv4_2/sep"),
                                std::string("conv3_2/sep")}) {
    dnn::FeatureExtractor fx({.include_classifier = false});
    fx.RequestTap(tap);
    // Warmup + measure.
    const video::Frame f0 = ds.RenderFrame(0);
    fx.Extract(dnn::PreprocessRgb(f0.r(), f0.g(), f0.b(), f0.height(),
                                  f0.width()));
    util::WallTimer timer;
    for (std::int64_t i = 1; i < n_frames; ++i) {
      const video::Frame f = ds.RenderFrame(i);
      fx.Extract(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(),
                                    f.width()));
    }
    const double ms = timer.ElapsedMillis() / static_cast<double>(n_frames - 1);
    if (tap == "conv6/sep") full_ms = ms;
    t.AddRow({tap, std::to_string(dnn::TapStride(tap)),
              util::Table::Num(static_cast<double>(fx.MacsPerFrame(
                                   ds.spec().height, ds.spec().width)) / 1e9,
                               3),
              util::Table::Num(ms, 2),
              util::Table::Num(full_ms / ms, 2) + "x faster"});
    json.NewRow();
    json.Row("deepest_tap", tap);
    json.Row("gmacs_per_frame",
             static_cast<double>(
                 fx.MacsPerFrame(ds.spec().height, ds.spec().width)) / 1e9);
    json.Row("ms_per_frame", ms);
    json.Row("speedup_vs_full", full_ms / ms);
  }
  t.Print(std::cout);
  json.Write();
  std::printf("\nWhen every tenant taps mid-network layers, stopping there "
              "skips the deepest (widest) base-DNN layers — compounding the "
              "paper's computation sharing.\n");
  return 0;
}
