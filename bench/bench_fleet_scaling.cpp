// Fleet scaling: throughput vs number of camera streams on ONE edge box at
// a FIXED total tenant count (the paper's multi-application scenario spread
// across the multi-camera deployments of §2.2.3).
//
// Sweep: S streams share the box, each carrying T/S of the T tenants; the
// phase-1 batch width stays constant, so the fleet fills each base-DNN
// batch from S different streams instead of buffering one stream's future.
// Baseline: the single-stream EdgeNode with all T tenants and
// submit_batch = N (exactly PR 3's batched path).
//
// What the JSON must show (the PR 4 acceptance bar):
//  * fps at S > 1 is >= the single-stream submit_batch baseline (same
//    batch width, same shared base DNN, strictly less MC work per frame);
//  * per-frame buffering latency (frames a stream stages per batch,
//    frames / batches / streams) FALLS as ~N/S while the batch width — and
//    with it phase 1's n × out_c parallel width — stays N.
//
// Modes (stackable flags, all emitting into the same --json file):
//   (default)          the sync fleet sweep above
//   --pipeline         re-run every sweep point through the threaded
//                      staged pipeline (StartPipeline/StopPipeline) and
//                      report pipelined vs synchronous aggregate fps
//   --mixed-geometry   a heterogeneous wall: half the streams at a second
//                      frame size, one fleet, two batch buckets — reports
//                      per-bucket batch occupancy and compares against the
//                      pre-bucket workaround (two homogeneous fleets run
//                      back to back)
//   --overload         deterministic (FakeClock) overload sweep: offered
//                      load 1x-4x against fixed compute, one priority
//                      stream + three best-effort streams — reports
//                      goodput, shed ratio, decimation cadence, and p95
//                      ingest->decision latency per priority class
//   --overload-soak    short real-clock pipelined soak at 2x offered load;
//                      FF_CHECKs that queues stay bounded and the
//                      high-priority stream loses nothing (CI smoke)
//   --xcam             cross-camera dedupe sweep: 2/4/8 cameras pointed at
//                      ONE scripted scene (video::OverlapScript), run with
//                      and without a declared topology — reports uplink clip
//                      bytes both ways, the dedupe rate, and a standalone
//                      correlator microbench (correlation cost per event)
//
// Env knobs on top of the shared FF_BENCH_*:
//   FF_BENCH_TENANTS       total tenants T across the box (default 8)
//   FF_BENCH_BATCH         phase-1 batch width N (default 8)
//   FF_BENCH_FLEET_FRAMES  total frames per measurement (default 24)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/edge_fleet.hpp"
#include "core/edge_node.hpp"
#include "nn/kernels.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "video/overlap_source.hpp"
#include "xcam/correlator.hpp"
#include "xcam/topology.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

// Pre-rendered frames behind the FrameSource interface, so measured time is
// filtering, not synthesis.
class VectorSource : public video::FrameSource {
 public:
  VectorSource(std::vector<video::Frame> frames, std::int64_t fps)
      : frames_(std::move(frames)), fps_(fps) {}

  std::optional<video::Frame> Next() override {
    if (next_ >= frames_.size()) return std::nullopt;
    return frames_[next_++];
  }
  void Reset() override { next_ = 0; }

  std::int64_t width() const override {
    return frames_.empty() ? 0 : frames_.front().width();
  }
  std::int64_t height() const override {
    return frames_.empty() ? 0 : frames_.front().height();
  }
  std::int64_t fps() const override { return fps_; }

 private:
  std::vector<video::Frame> frames_;
  std::int64_t fps_ = 15;
  std::size_t next_ = 0;
};

std::unique_ptr<core::Microclassifier> MakeTenant(
    const dnn::FeatureExtractor& fx, const video::DatasetSpec& spec,
    const std::string& tap, std::int64_t i) {
  const char* arch = i % 2 == 0 ? "windowed" : "localized";
  return core::MakeMicroclassifier(
      arch,
      {.name = std::string(arch) + std::to_string(i), .tap = tap,
       .seed = static_cast<std::uint64_t>(100 + i)},
      fx, spec.height, spec.width);
}

struct Measurement {
  double fps = 0;
  double base_s_per_frame = 0;
  double mc_s_per_frame = 0;
  std::int64_t batches = 0;
  std::int64_t frames = 0;
};

// Ground-truth tenant for the --xcam wall: returns the OverlapScript's exact
// activity bit per frame, so events exactly bracket the scripted objects and
// the byte comparison measures dedupe mechanics, not classifier accuracy
// (the same trick as tests/edge_fleet_xcam_test.cpp).
class ScriptOracleMc : public core::Microclassifier {
 public:
  ScriptOracleMc(const dnn::FeatureExtractor& fx, const std::string& tap,
                 std::shared_ptr<const video::OverlapScript> script)
      : core::Microclassifier({.name = "oracle", .tap = tap}, fx,
                              script->spec().height, script->spec().width),
        script_(std::move(script)) {}
  nn::Sequential& net() override { return net_; }

 protected:
  float InferView(const nn::TensorView&) override {
    return script_->Active(frame_++) ? 1.0f : 0.0f;
  }

 private:
  std::shared_ptr<const video::OverlapScript> script_;
  std::int64_t frame_ = 0;
  nn::Sequential net_{"oracle"};
};

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Fleet scaling: fps vs streams at fixed total tenants",
                     bp);
  const std::int64_t tenants = util::EnvInt("FF_BENCH_TENANTS", 8);
  const std::int64_t batch = util::EnvInt("FF_BENCH_BATCH", 8);
  const std::int64_t total_frames = util::EnvInt("FF_BENCH_FLEET_FRAMES", 24);
  bool mode_pipeline = false, mode_mixed = false;
  bool mode_overload = false, mode_soak = false, mode_xcam = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--pipeline") mode_pipeline = true;
    if (std::string_view(argv[i]) == "--mixed-geometry") mode_mixed = true;
    if (std::string_view(argv[i]) == "--overload") mode_overload = true;
    if (std::string_view(argv[i]) == "--overload-soak") mode_soak = true;
    if (std::string_view(argv[i]) == "--xcam") mode_xcam = true;
  }
  bench::JsonResult json("fleet_scaling",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  json.Set("tenants_total", static_cast<double>(tenants));
  json.Set("batch", static_cast<double>(batch));
  json.Set("frames_total", static_cast<double>(total_frames));
  json.Set("simd", nn::kernels::IsaName(nn::kernels::ActiveIsa()));

  // One synthetic camera per potential stream (same geometry, different
  // days), frames rendered up front.
  const std::int64_t max_streams = std::min<std::int64_t>(tenants, 8);
  std::vector<video::SyntheticDataset> cams;
  for (std::int64_t s = 0; s < max_streams; ++s) {
    auto spec = video::JacksonSpec(bp.width, total_frames + 1,
                                   static_cast<std::uint64_t>(40 + s));
    spec.object_scale = bp.object_scale;
    cams.emplace_back(spec);
  }
  const video::DatasetSpec& spec = cams.front().spec();
  const std::string tap = bench::TapForScale(bp.width);

  auto render = [&](std::int64_t cam, std::int64_t n) {
    std::vector<video::Frame> frames;
    for (std::int64_t i = 0; i < n; ++i) {
      frames.push_back(cams[static_cast<std::size_t>(cam)].RenderFrame(i));
    }
    return frames;
  };

  // Warm the kernel dispatch / allocator before any timed run.
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    fx.RequestTap(tap);
    const video::Frame f = cams[0].RenderFrame(total_frames);
    fx.Extract(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(),
                                  f.width()));
  }

  // --- Baseline: single-stream EdgeNode, all tenants, submit_batch=N ------
  Measurement node_m;
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeNodeConfig cfg;
    cfg.frame_width = spec.width;
    cfg.frame_height = spec.height;
    cfg.fps = spec.fps;
    cfg.enable_upload = false;
    cfg.submit_batch = batch;
    core::EdgeNode node(fx, cfg);
    for (std::int64_t i = 0; i < tenants; ++i) {
      node.Attach({.mc = MakeTenant(fx, spec, tap, i)});
    }
    VectorSource src(render(0, total_frames), spec.fps);
    util::WallTimer timer;
    node.Run(src);
    const double seconds = timer.ElapsedSeconds();
    node_m.frames = node.frames_processed();
    node_m.fps = static_cast<double>(node_m.frames) / seconds;
    node_m.base_s_per_frame =
        node.base_dnn_seconds() / static_cast<double>(node_m.frames);
    node_m.mc_s_per_frame =
        node.mc_seconds() / static_cast<double>(node_m.frames);
    node_m.batches = node.fleet().batches_run();
  }

  util::Table t({"streams", "tenants/stream", "fps",
                 "base DNN (ms/frame)", "MCs (ms/frame)",
                 "buffer (frames/stream/batch)", "vs EdgeNode"});
  auto add_row = [&](const std::string& label, std::int64_t streams,
                     std::int64_t per_stream, const Measurement& m,
                     const std::string& mode, double vs_sync) {
    const double buffer_frames =
        static_cast<double>(m.frames) /
        static_cast<double>(m.batches * streams);
    t.AddRow({label, std::to_string(per_stream),
              util::Table::Num(m.fps, 2),
              util::Table::Num(m.base_s_per_frame * 1e3, 2),
              util::Table::Num(m.mc_s_per_frame * 1e3, 2),
              util::Table::Num(buffer_frames, 2),
              util::Table::Num(m.fps / node_m.fps, 2) + "x"});
    json.NewRow();
    json.Row("config", label);
    json.Row("mode", mode);
    json.Row("streams", static_cast<double>(streams));
    json.Row("tenants_per_stream", static_cast<double>(per_stream));
    json.Row("fps", m.fps);
    json.Row("base_dnn_s_per_frame", m.base_s_per_frame);
    json.Row("mc_s_per_frame", m.mc_s_per_frame);
    json.Row("batches", static_cast<double>(m.batches));
    json.Row("buffer_frames_per_stream", buffer_frames);
    json.Row("speedup_vs_node", m.fps / node_m.fps);
    if (vs_sync > 0.0) json.Row("fps_vs_sync", vs_sync);
  };
  add_row("EdgeNode (baseline)", 1, tenants, node_m, "sync", 0.0);

  // One homogeneous fleet run: S streams, T/S tenants each, through either
  // the synchronous Step() schedule or the threaded staged pipeline.
  auto run_fleet = [&](std::int64_t streams, std::int64_t per_stream,
                       bool pipelined) {
    const std::int64_t frames_per_stream = total_frames / streams;
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeFleetConfig cfg;
    cfg.enable_upload = false;
    cfg.max_batch = batch;
    core::EdgeFleet fleet(fx, cfg);
    std::vector<std::unique_ptr<VectorSource>> sources;
    std::int64_t tenant_i = 0;
    for (std::int64_t s = 0; s < streams; ++s) {
      sources.push_back(std::make_unique<VectorSource>(
          render(s, frames_per_stream), spec.fps));
      const core::StreamHandle h = fleet.AddStream(*sources.back());
      for (std::int64_t k = 0; k < per_stream; ++k) {
        fleet.Attach(h, {.mc = MakeTenant(fx, spec, tap, tenant_i++)});
      }
    }
    util::WallTimer timer;
    if (pipelined) {
      fleet.RunPipelined();
    } else {
      fleet.Run();
    }
    const double seconds = timer.ElapsedSeconds();
    Measurement m;
    m.frames = fleet.frames_processed();
    m.fps = static_cast<double>(m.frames) / seconds;
    m.base_s_per_frame =
        fleet.base_dnn_seconds() / static_cast<double>(m.frames);
    m.mc_s_per_frame = fleet.mc_seconds() / static_cast<double>(m.frames);
    m.batches = fleet.batches_run();
    return m;
  };

  // --- Fleet sweep: S streams, T/S tenants each, same batch width ----------
  for (std::int64_t streams = 1; streams <= max_streams; streams *= 2) {
    if (tenants % streams != 0) continue;
    const std::int64_t per_stream = tenants / streams;
    if (total_frames / streams == 0) {
      std::printf("skipping %lld streams: FF_BENCH_FLEET_FRAMES=%lld leaves "
                  "no frames per stream\n",
                  static_cast<long long>(streams),
                  static_cast<long long>(total_frames));
      continue;
    }
    const Measurement m = run_fleet(streams, per_stream, /*pipelined=*/false);
    add_row("EdgeFleet x" + std::to_string(streams), streams, per_stream, m,
            "sync", 0.0);
    if (mode_pipeline) {
      const Measurement p = run_fleet(streams, per_stream, /*pipelined=*/true);
      add_row("EdgeFleet x" + std::to_string(streams) + " pipelined", streams,
              per_stream, p, "pipelined", p.fps / m.fps);
    }
  }
  t.Print(std::cout);

  std::printf(
      "\nFixed batch width %lld: the fleet fills each base-DNN batch from "
      "different streams, so per-stream buffering falls as ~batch/streams "
      "while phase-1 parallel width (n x out_c) stays constant; with the "
      "total tenant count fixed, per-frame MC work also drops as streams "
      "share the box.%s\n",
      static_cast<long long>(batch),
      mode_pipeline
          ? " Pipelined rows overlap source decode with phase 1 + MC "
            "inference on dedicated stage threads (wins scale with cores; "
            "on a 1-core box they measure scheduling overhead)."
          : "");

  // --- Mixed-geometry wall: two buckets, one fleet ------------------------
  if (mode_mixed) {
    // Half the wall at a second frame size (3/4 linear, snapped to the
    // codec's 16-pixel macroblock grid).
    std::int64_t w2 = bp.width * 3 / 4 / 16 * 16;
    if (w2 < 64) w2 = 64;
    // Streams per geometry; the full-res wall reuses the sweep's cams,
    // which hold only max_streams datasets (min(FF_BENCH_TENANTS, 8)).
    const std::int64_t per_wall = std::min<std::int64_t>(2, max_streams);
    const std::int64_t frames_per_stream =
        std::max<std::int64_t>(1, total_frames / (2 * per_wall));
    const std::int64_t mcs_per_stream =
        std::max<std::int64_t>(1, tenants / (2 * per_wall));
    std::vector<video::SyntheticDataset> cams2;
    for (std::int64_t s = 0; s < per_wall; ++s) {
      auto spec2 = video::JacksonSpec(w2, frames_per_stream + 1,
                                      static_cast<std::uint64_t>(50 + s));
      spec2.object_scale = bp.object_scale;
      cams2.emplace_back(spec2);
    }
    const std::string tap2 = bench::TapForScale(w2);
    auto render2 = [&](std::int64_t cam, std::int64_t n) {
      std::vector<video::Frame> frames;
      for (std::int64_t i = 0; i < n; ++i) {
        frames.push_back(cams2[static_cast<std::size_t>(cam)].RenderFrame(i));
      }
      return frames;
    };

    struct WallRun {
      double fps = 0;
      double seconds = 0;
      std::int64_t frames = 0;
    };
    // `which`: 0 = big wall only, 1 = small wall only, 2 = both (mixed).
    auto run_wall = [&](int which, bool pipelined,
                        std::vector<core::BucketStats>* stats) {
      dnn::FeatureExtractor fx({.include_classifier = false});
      core::EdgeFleetConfig cfg;
      cfg.enable_upload = false;
      cfg.max_batch = batch;
      core::EdgeFleet fleet(fx, cfg);
      std::vector<std::unique_ptr<VectorSource>> sources;
      std::int64_t tenant_i = 0;
      for (std::int64_t s = 0; s < per_wall; ++s) {
        if (which != 1) {
          sources.push_back(std::make_unique<VectorSource>(
              render(s, frames_per_stream), spec.fps));
          const core::StreamHandle h = fleet.AddStream(*sources.back());
          for (std::int64_t k = 0; k < mcs_per_stream; ++k) {
            fleet.Attach(h, {.mc = MakeTenant(fx, spec, tap, tenant_i++)});
          }
        }
        if (which != 0) {
          sources.push_back(std::make_unique<VectorSource>(
              render2(s, frames_per_stream), cams2[0].spec().fps));
          const core::StreamHandle h = fleet.AddStream(*sources.back());
          for (std::int64_t k = 0; k < mcs_per_stream; ++k) {
            fleet.Attach(h, {.mc = MakeTenant(fx, cams2[0].spec(), tap2,
                                              tenant_i++)});
          }
        }
      }
      util::WallTimer timer;
      if (pipelined) {
        fleet.RunPipelined();
      } else {
        fleet.Run();
      }
      WallRun out;
      out.seconds = timer.ElapsedSeconds();
      out.frames = fleet.frames_processed();
      out.fps = static_cast<double>(out.frames) / out.seconds;
      if (stats != nullptr) *stats = fleet.bucket_stats();
      return out;
    };

    std::vector<core::BucketStats> stats;
    const WallRun mixed = run_wall(/*which=*/2, /*pipelined=*/false, &stats);
    const WallRun mixed_pipe =
        run_wall(/*which=*/2, /*pipelined=*/true, nullptr);
    // The pre-bucket workaround: one fleet per geometry, run back to back
    // (filtering seconds only — setup/rendering is excluded for every arm).
    const WallRun big = run_wall(/*which=*/0, /*pipelined=*/false, nullptr);
    const WallRun small = run_wall(/*which=*/1, /*pipelined=*/false, nullptr);
    const double seq_fps = static_cast<double>(big.frames + small.frames) /
                           (big.seconds + small.seconds);

    util::Table mt({"mixed wall config", "streams", "fps", "vs sequential"});
    auto add_mixed = [&](const std::string& label, double fps,
                         std::int64_t frames, const std::string& mode) {
      mt.AddRow({label, std::to_string(2 * per_wall),
                 util::Table::Num(fps, 2),
                 util::Table::Num(fps / seq_fps, 2) + "x"});
      json.NewRow();
      json.Row("config", label);
      json.Row("mode", mode);
      json.Row("streams", static_cast<double>(2 * per_wall));
      json.Row("fps", fps);
      json.Row("frames", static_cast<double>(frames));
      json.Row("fps_vs_sequential", fps / seq_fps);
    };
    add_mixed("two fleets sequential (pre-bucket)", seq_fps,
              big.frames + small.frames, "sequential");
    add_mixed("mixed-geometry fleet", mixed.fps, mixed.frames, "mixed-sync");
    add_mixed("mixed-geometry fleet pipelined", mixed_pipe.fps,
              mixed_pipe.frames, "mixed-pipelined");
    std::printf("\nMixed-geometry wall (%lldx and %lldx side by side, "
                "%lld streams each):\n",
                static_cast<long long>(bp.width), static_cast<long long>(w2),
                static_cast<long long>(per_wall));
    mt.Print(std::cout);
    for (const auto& b : stats) {
      const double occupancy =
          b.batches > 0 ? static_cast<double>(b.frames) /
                              static_cast<double>(b.batches)
                        : 0.0;
      std::printf("  bucket %lldx%lld: %lld batches, %lld frames, "
                  "avg occupancy %.2f / %lld\n",
                  static_cast<long long>(b.width),
                  static_cast<long long>(b.height),
                  static_cast<long long>(b.batches),
                  static_cast<long long>(b.frames), occupancy,
                  static_cast<long long>(batch));
      json.NewRow();
      json.Row("config", "bucket " + std::to_string(b.width) + "x" +
                             std::to_string(b.height));
      json.Row("mode", "bucket-stats");
      json.Row("streams", static_cast<double>(b.streams));
      json.Row("batches", static_cast<double>(b.batches));
      json.Row("frames", static_cast<double>(b.frames));
      json.Row("batch_occupancy", occupancy);
    }
  }
  // --- Overload sweep: offered load vs goodput per priority class ---------
  // One box provisioned for ~1x: four push-driven streams (one priority
  // tenant, three best-effort), one Step() batch per scheduling round. The
  // offered load multiplies only the best-effort pushes, so the sweep shows
  // the shedding order: best-effort decimates toward 1/load goodput while
  // the priority stream keeps every frame.
  if (mode_overload) {
    struct ClassStats {
      std::int64_t offered = 0, processed = 0, shed = 0;
      std::int64_t keep_every = 1, queue_peak = 0;
      double p95_ms = 0;
    };
    util::Table ot({"load", "class", "offered", "processed", "shed",
                    "goodput", "keep_every", "p95 (ms)"});
    const std::int64_t kLows = 3;
    const std::int64_t kRounds = 96;
    for (std::int64_t load = 1; load <= 4; ++load) {
      util::FakeClock clock;
      dnn::FeatureExtractor fx({.include_classifier = false});
      core::EdgeFleetConfig cfg;
      cfg.enable_upload = false;
      cfg.max_batch = 1 + kLows;
      cfg.queue_capacity = 16;
      cfg.clock = &clock;
      cfg.slo_ms = 1'000;
      cfg.shed_queue_depth = 4;
      cfg.shed_breach_frames = 2;
      cfg.shed_recover_frames = 64;  // no easing inside the measured window
      cfg.max_keep_every = 8;
      core::EdgeFleet fleet(fx, cfg);
      core::StreamConfig scfg;
      scfg.frame_width = spec.width;
      scfg.frame_height = spec.height;
      scfg.fps = spec.fps;
      scfg.priority = 1;
      const core::StreamHandle high = fleet.AddStream(scfg);
      fleet.Attach(high, {.mc = MakeTenant(fx, spec, tap, 0)});
      std::vector<core::StreamHandle> lows;
      for (std::int64_t s = 0; s < kLows; ++s) {
        scfg.priority = 0;
        lows.push_back(fleet.AddStream(scfg));
        fleet.Attach(lows.back(), {.mc = MakeTenant(fx, spec, tap, 1 + s)});
      }
      const std::vector<video::Frame> pool = render(0, 8);
      std::int64_t next_frame = 0;
      auto push = [&](core::StreamHandle h) {
        // The controller sheds ahead of the queue bound; the guard only
        // covers the escalation transient right after the load step.
        if (static_cast<std::int64_t>(fleet.queued_frames(h)) >=
            cfg.queue_capacity - 1) {
          return;
        }
        video::Frame f = pool[static_cast<std::size_t>(next_frame % 8)];
        f.index = next_frame++;
        fleet.Push(h, std::move(f));
      };
      for (std::int64_t round = 0; round < kRounds; ++round) {
        push(high);
        for (const core::StreamHandle h : lows) {
          for (std::int64_t k = 0; k < load; ++k) push(h);
        }
        fleet.Step();
        clock.AdvanceMs(33);
      }
      while (fleet.Step() > 0) clock.AdvanceMs(33);  // drain the queues
      fleet.Drain();

      const core::FleetStats fs = fleet.fleet_stats();
      ClassStats hi, lo;
      for (const auto& s : fs.streams) {
        ClassStats& c = s.handle == high ? hi : lo;
        c.offered += s.frames_offered;
        c.processed += s.frames_processed;
        c.shed += s.frames_shed;
        c.keep_every = std::max(c.keep_every, s.keep_every);
        c.queue_peak = std::max(c.queue_peak, s.queue_peak);
        c.p95_ms = std::max(c.p95_ms, s.latency_p95_ms);
      }
      auto add_class = [&](const std::string& cls, const ClassStats& c) {
        const double goodput =
            c.offered > 0
                ? static_cast<double>(c.processed) /
                      static_cast<double>(c.offered)
                : 0.0;
        const double shed_ratio =
            c.offered > 0 ? static_cast<double>(c.shed) /
                                static_cast<double>(c.offered)
                          : 0.0;
        ot.AddRow({std::to_string(load) + "x", cls,
                   std::to_string(c.offered), std::to_string(c.processed),
                   std::to_string(c.shed), util::Table::Num(goodput, 2),
                   std::to_string(c.keep_every),
                   util::Table::Num(c.p95_ms, 1)});
        json.NewRow();
        json.Row("config", "overload " + std::to_string(load) + "x " + cls);
        json.Row("mode", "overload");
        json.Row("load_multiplier", static_cast<double>(load));
        json.Row("priority_class", cls);
        json.Row("frames_offered", static_cast<double>(c.offered));
        json.Row("frames_processed", static_cast<double>(c.processed));
        json.Row("frames_shed", static_cast<double>(c.shed));
        json.Row("goodput", goodput);
        json.Row("shed_ratio", shed_ratio);
        json.Row("keep_every", static_cast<double>(c.keep_every));
        json.Row("queue_peak", static_cast<double>(c.queue_peak));
        json.Row("latency_p95_ms", c.p95_ms);
      };
      add_class("high", hi);
      add_class("low", lo);
      // The priority gate must hold at every load: the high stream only
      // degrades after every best-effort stream is fully decimated, which
      // this sweep's loads never force.
      FF_CHECK_EQ(hi.shed, 0);
      FF_CHECK_EQ(hi.processed, hi.offered);
    }
    std::printf("\nOverload sweep (FakeClock, deterministic): offered load "
                "multiplies the three best-effort streams against a box "
                "that drains ~%lld frames per 33ms round:\n",
                static_cast<long long>(1 + kLows));
    ot.Print(std::cout);
  }

  // --- Overload soak: real clock, threaded pipeline, 2x offered load ------
  if (mode_soak) {
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeFleetConfig cfg;
    cfg.enable_upload = false;
    cfg.max_batch = 4;
    cfg.queue_capacity = 16;
    cfg.shed_queue_depth = 4;
    cfg.shed_breach_frames = 2;
    cfg.shed_recover_frames = 16;
    cfg.max_keep_every = 8;
    core::EdgeFleet fleet(fx, cfg);
    core::StreamConfig scfg;
    scfg.frame_width = spec.width;
    scfg.frame_height = spec.height;
    scfg.fps = spec.fps;
    scfg.priority = 1;
    const core::StreamHandle high = fleet.AddStream(scfg);
    fleet.Attach(high, {.mc = MakeTenant(fx, spec, tap, 0)});
    std::vector<core::StreamHandle> lows;
    for (std::int64_t s = 0; s < 3; ++s) {
      scfg.priority = 0;
      lows.push_back(fleet.AddStream(scfg));
      fleet.Attach(lows.back(), {.mc = MakeTenant(fx, spec, tap, 1 + s)});
    }
    const std::vector<video::Frame> pool = render(0, 8);
    std::int64_t next_frame = 0;
    auto push = [&](core::StreamHandle h) {
      if (static_cast<std::int64_t>(fleet.queued_frames(h)) >=
          cfg.queue_capacity - 1) {
        return;
      }
      video::Frame f = pool[static_cast<std::size_t>(next_frame % 8)];
      f.index = next_frame++;
      fleet.Push(h, std::move(f));
    };
    util::WallTimer timer;
    fleet.StartPipeline();
    const std::int64_t kRounds = util::EnvInt("FF_BENCH_SOAK_ROUNDS", 250);
    for (std::int64_t round = 0; round < kRounds; ++round) {
      push(high);
      for (const core::StreamHandle h : lows) {  // 2x the priority rate
        push(h);
        push(h);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    fleet.WaitPipelineIdle();
    fleet.StopPipeline();
    fleet.Drain();
    const double seconds = timer.ElapsedSeconds();

    const core::FleetStats fs = fleet.fleet_stats();
    std::int64_t hi_offered = 0, hi_processed = 0, hi_shed = 0;
    for (const auto& s : fs.streams) {
      // The bound the controller exists to hold: no queue ever exceeds its
      // configured capacity, even while offered load is 2x.
      FF_CHECK_LE(s.queue_peak, cfg.queue_capacity);
      if (s.handle == high) {
        hi_offered = s.frames_offered;
        hi_processed = s.frames_processed;
        hi_shed = s.frames_shed;
      }
    }
    FF_CHECK_EQ(hi_shed, 0);
    FF_CHECK_EQ(hi_processed, hi_offered);
    FF_CHECK_EQ(fs.in_flight, 0);
    std::printf("\nOverload soak: %.2fs pipelined at 2x offered load — "
                "fleet offered %lld / processed %lld / shed %lld; "
                "priority stream kept all %lld frames; p95 %.1f ms\n",
                seconds, static_cast<long long>(fs.frames_offered),
                static_cast<long long>(fs.frames_processed),
                static_cast<long long>(fs.frames_shed),
                static_cast<long long>(hi_processed), fs.latency_p95_ms);
    json.NewRow();
    json.Row("config", "overload soak 2x");
    json.Row("mode", "overload-soak");
    json.Row("seconds", seconds);
    json.Row("frames_offered", static_cast<double>(fs.frames_offered));
    json.Row("frames_processed", static_cast<double>(fs.frames_processed));
    json.Row("frames_shed", static_cast<double>(fs.frames_shed));
    json.Row("high_frames_processed", static_cast<double>(hi_processed));
    json.Row("latency_p95_ms", fs.latency_p95_ms);
  }

  // --- Cross-camera dedupe: uplink bytes with vs without suppression ------
  // C cameras (2/4/8) point at ONE scripted scene through per-camera view
  // transforms; the dedupe arm declares a full-mesh topology so every event
  // fuses into one C-member group and only the canonical clip ships. The
  // oracle tenant makes events exactly bracket the scripted objects, so the
  // byte comparison measures suppression mechanics, not classifier accuracy.
  if (mode_xcam) {
    constexpr std::int64_t kMs = 1'000'000;
    const auto script = std::make_shared<const video::OverlapScript>(
        video::OverlapScriptSpec{});
    const std::string xtap = bench::TapForScale(script->spec().width);

    struct XcamRun {
      std::uint64_t bytes = 0;
      std::int64_t suppressed = 0;
      double seconds = 0;
      xcam::Correlator::Stats stats;
    };
    auto run_wall = [&](std::int64_t n_cams, bool with_topology) {
      util::FakeClock clock;
      dnn::FeatureExtractor fx({.include_classifier = false});
      core::EdgeFleetConfig cfg;
      cfg.upload_bitrate_bps = 60'000;
      cfg.vote_window = 1;  // decisions == oracle == script ground truth
      cfg.vote_k = 1;
      cfg.clock = &clock;
      core::EdgeFleet fleet(fx, cfg);
      std::vector<std::unique_ptr<video::OverlapSource>> srcs;
      std::vector<core::StreamHandle> handles;
      for (std::int64_t c = 0; c < n_cams; ++c) {
        video::OverlapView v;
        v.shift_x = 2.0 * static_cast<double>(c);  // parallax
        v.brightness = 3 * static_cast<int>(c);    // per-camera gain
        v.noise_amp = 2;                           // independent sensor noise
        v.noise_seed = 100 + static_cast<std::uint64_t>(c);
        srcs.push_back(std::make_unique<video::OverlapSource>(script, v));
        handles.push_back(fleet.AddStream(*srcs.back()));
      }
      if (with_topology) {
        xcam::Topology topo;
        for (std::size_t a = 0; a < handles.size(); ++a) {
          for (std::size_t b = a + 1; b < handles.size(); ++b) {
            topo.AddOverlap(handles[a], handles[b]);
          }
        }
        xcam::CorrelatorConfig ccfg;
        ccfg.window_ns = 50 * kMs;  // well under the inter-event gaps
        ccfg.min_similarity = 0.6f;
        fleet.SetTopology(std::move(topo), ccfg, xtap);
      }
      for (const core::StreamHandle h : handles) {
        fleet.Attach(h,
                     {.mc = std::make_unique<ScriptOracleMc>(fx, xtap, script)});
      }
      util::WallTimer timer;
      fleet.Run();
      XcamRun out;
      out.seconds = timer.ElapsedSeconds();
      out.bytes = fleet.upload_bytes();
      out.suppressed = fleet.frames_suppressed();
      if (with_topology) out.stats = fleet.xcam_stats();
      return out;
    };

    // Standalone correlator microbench: correlation cost per observed event,
    // isolated from rendering and base-DNN time. G groups of `n_cams` members
    // with correlated (shared base + per-camera noise, renormalized)
    // signatures on a shared capture timeline.
    const std::int64_t kGroups = util::EnvInt("FF_BENCH_XCAM_GROUPS", 256);
    constexpr std::int64_t kSigDim = 128;
    struct CorrCost {
      double us_per_event = 0;
      double pairs_per_event = 0;
    };
    auto corr_micro = [&](std::int64_t n_cams) {
      xcam::Topology topo;
      for (std::int64_t a = 0; a < n_cams; ++a) {
        for (std::int64_t b = a + 1; b < n_cams; ++b) topo.AddOverlap(a, b);
      }
      xcam::CorrelatorConfig ccfg;
      ccfg.window_ns = 50 * kMs;
      xcam::Correlator corr(std::move(topo), ccfg);
      corr.set_sink([](const xcam::CrossEventRecord&) {});
      util::Pcg32 rng(7);
      std::vector<xcam::ObservedEvent> events;
      events.reserve(static_cast<std::size_t>(kGroups * n_cams));
      for (std::int64_t g = 0; g < kGroups; ++g) {
        std::vector<float> base(kSigDim);
        for (auto& x : base) x = rng.NextFloat() - 0.5f;
        for (std::int64_t c = 0; c < n_cams; ++c) {
          xcam::ObservedEvent ev;
          ev.event.stream = c;
          ev.event.mc = "oracle";
          ev.event.id = g;
          ev.event.begin = g * 26;
          ev.event.end = g * 26 + 14;
          ev.event.begin_ts_ns = g * 400 * kMs + c * kMs;
          ev.event.end_ts_ns = ev.event.begin_ts_ns + 100 * kMs;
          ev.signature.resize(kSigDim);
          double norm = 0.0;
          for (std::int64_t i = 0; i < kSigDim; ++i) {
            const float x = base[static_cast<std::size_t>(i)] +
                            0.05f * (rng.NextFloat() - 0.5f);
            ev.signature[static_cast<std::size_t>(i)] = x;
            norm += static_cast<double>(x) * static_cast<double>(x);
          }
          const float inv = norm > 0 ? static_cast<float>(1.0 / std::sqrt(norm))
                                     : 0.0f;
          for (auto& x : ev.signature) x *= inv;
          ev.peak_score = 1.0f;
          events.push_back(std::move(ev));
        }
      }
      util::WallTimer timer;
      std::int64_t g = 0;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (static_cast<std::int64_t>(i) == g * n_cams) {
          // Every event of groups < g has been observed; the watermark frees
          // finalized groups so the pending set stays bounded, as it does
          // inside the fleet.
          corr.AdvanceWatermark(g * 400 * kMs);
          ++g;
        }
        corr.Observe(std::move(events[i]));
      }
      corr.Finish();
      const double seconds = timer.ElapsedSeconds();
      const auto& st = corr.stats();
      // Every synthetic group must have fused — otherwise the "cost per
      // event" measured a different workload than advertised.
      FF_CHECK_EQ(st.fused_groups, kGroups);
      FF_CHECK_EQ(st.members_fused, kGroups * n_cams);
      CorrCost cost;
      cost.us_per_event =
          seconds * 1e6 / static_cast<double>(st.events_observed);
      cost.pairs_per_event = static_cast<double>(st.pairs_tested) /
                             static_cast<double>(st.events_observed);
      return cost;
    };

    util::Table xt({"cameras", "clip KB (no topo)", "clip KB (dedupe)",
                    "byte cut", "suppressed frames", "dedupe rate",
                    "corr us/event", "pairs/event"});
    for (const std::int64_t n_cams : {2, 4, 8}) {
      const XcamRun base = run_wall(n_cams, /*with_topology=*/false);
      const XcamRun dedup = run_wall(n_cams, /*with_topology=*/true);
      const CorrCost cost = corr_micro(n_cams);
      // The acceptance bar for the wall: suppression must at least halve
      // uplink clip bytes, and fuse every scripted event across all views.
      FF_CHECK_LE(2 * dedup.bytes, base.bytes);
      FF_CHECK_EQ(dedup.stats.fused_groups, script->spec().n_events);
      FF_CHECK_EQ(dedup.stats.members_fused, n_cams * script->spec().n_events);
      // Share of observed events whose clip the fleet did not re-upload.
      const double dedupe_rate =
          static_cast<double>(dedup.stats.members_fused -
                              dedup.stats.fused_groups) /
          static_cast<double>(dedup.stats.events_observed);
      xt.AddRow({std::to_string(n_cams),
                 util::Table::Num(static_cast<double>(base.bytes) / 1e3, 1),
                 util::Table::Num(static_cast<double>(dedup.bytes) / 1e3, 1),
                 util::Table::Num(static_cast<double>(base.bytes) /
                                      static_cast<double>(dedup.bytes),
                                  2) +
                     "x",
                 std::to_string(dedup.suppressed),
                 util::Table::Num(dedupe_rate, 2),
                 util::Table::Num(cost.us_per_event, 2),
                 util::Table::Num(cost.pairs_per_event, 2)});
      json.NewRow();
      json.Row("config", "xcam wall x" + std::to_string(n_cams));
      json.Row("mode", "xcam");
      json.Row("cameras", static_cast<double>(n_cams));
      json.Row("clip_bytes_no_topology", static_cast<double>(base.bytes));
      json.Row("clip_bytes_dedupe", static_cast<double>(dedup.bytes));
      json.Row("byte_reduction", static_cast<double>(base.bytes) /
                                     static_cast<double>(dedup.bytes));
      json.Row("frames_suppressed", static_cast<double>(dedup.suppressed));
      json.Row("events_observed",
               static_cast<double>(dedup.stats.events_observed));
      json.Row("groups_emitted",
               static_cast<double>(dedup.stats.groups_emitted));
      json.Row("fused_groups", static_cast<double>(dedup.stats.fused_groups));
      json.Row("members_fused",
               static_cast<double>(dedup.stats.members_fused));
      json.Row("dedupe_rate", dedupe_rate);
      json.Row("corr_us_per_event", cost.us_per_event);
      json.Row("corr_pairs_per_event", cost.pairs_per_event);
      json.Row("wall_seconds_dedupe", dedup.seconds);
    }
    std::printf("\nCross-camera wall (%lld scripted events, %lldx%lld, "
                "full-mesh topology; correlator microbench over %lld "
                "synthetic groups):\n",
                static_cast<long long>(script->spec().n_events),
                static_cast<long long>(script->spec().width),
                static_cast<long long>(script->spec().height),
                static_cast<long long>(kGroups));
    xt.Print(std::cout);
    std::printf("\nDedupe rate is the share of observed events whose clip "
                "was NOT re-uploaded ((members - groups) / observed); with "
                "C cameras on one scene it approaches (C-1)/C while the "
                "canonical stream's bytes stay bitwise-identical to the "
                "no-topology fleet.\n");
  }

  json.Write();
  return 0;
}
