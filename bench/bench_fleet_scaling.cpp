// Fleet scaling: throughput vs number of camera streams on ONE edge box at
// a FIXED total tenant count (the paper's multi-application scenario spread
// across the multi-camera deployments of §2.2.3).
//
// Sweep: S streams share the box, each carrying T/S of the T tenants; the
// phase-1 batch width stays constant, so the fleet fills each base-DNN
// batch from S different streams instead of buffering one stream's future.
// Baseline: the single-stream EdgeNode with all T tenants and
// submit_batch = N (exactly PR 3's batched path).
//
// What the JSON must show (the PR 4 acceptance bar):
//  * fps at S > 1 is >= the single-stream submit_batch baseline (same
//    batch width, same shared base DNN, strictly less MC work per frame);
//  * per-frame buffering latency (frames a stream stages per batch,
//    frames / batches / streams) FALLS as ~N/S while the batch width — and
//    with it phase 1's n × out_c parallel width — stays N.
//
// Env knobs on top of the shared FF_BENCH_*:
//   FF_BENCH_TENANTS       total tenants T across the box (default 8)
//   FF_BENCH_BATCH         phase-1 batch width N (default 8)
//   FF_BENCH_FLEET_FRAMES  total frames per measurement (default 24)
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/edge_fleet.hpp"
#include "core/edge_node.hpp"
#include "nn/kernels.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

// Pre-rendered frames behind the FrameSource interface, so measured time is
// filtering, not synthesis.
class VectorSource : public video::FrameSource {
 public:
  VectorSource(std::vector<video::Frame> frames, std::int64_t fps)
      : frames_(std::move(frames)), fps_(fps) {}

  std::optional<video::Frame> Next() override {
    if (next_ >= frames_.size()) return std::nullopt;
    return frames_[next_++];
  }
  void Reset() override { next_ = 0; }

  std::int64_t width() const override {
    return frames_.empty() ? 0 : frames_.front().width();
  }
  std::int64_t height() const override {
    return frames_.empty() ? 0 : frames_.front().height();
  }
  std::int64_t fps() const override { return fps_; }

 private:
  std::vector<video::Frame> frames_;
  std::int64_t fps_ = 15;
  std::size_t next_ = 0;
};

std::unique_ptr<core::Microclassifier> MakeTenant(
    const dnn::FeatureExtractor& fx, const video::DatasetSpec& spec,
    const std::string& tap, std::int64_t i) {
  const char* arch = i % 2 == 0 ? "windowed" : "localized";
  return core::MakeMicroclassifier(
      arch,
      {.name = std::string(arch) + std::to_string(i), .tap = tap,
       .seed = static_cast<std::uint64_t>(100 + i)},
      fx, spec.height, spec.width);
}

struct Measurement {
  double fps = 0;
  double base_s_per_frame = 0;
  double mc_s_per_frame = 0;
  std::int64_t batches = 0;
  std::int64_t frames = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Fleet scaling: fps vs streams at fixed total tenants",
                     bp);
  const std::int64_t tenants = util::EnvInt("FF_BENCH_TENANTS", 8);
  const std::int64_t batch = util::EnvInt("FF_BENCH_BATCH", 8);
  const std::int64_t total_frames = util::EnvInt("FF_BENCH_FLEET_FRAMES", 24);
  bench::JsonResult json("fleet_scaling",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  json.Set("tenants_total", static_cast<double>(tenants));
  json.Set("batch", static_cast<double>(batch));
  json.Set("frames_total", static_cast<double>(total_frames));
  json.Set("simd", nn::kernels::IsaName(nn::kernels::ActiveIsa()));

  // One synthetic camera per potential stream (same geometry, different
  // days), frames rendered up front.
  const std::int64_t max_streams = std::min<std::int64_t>(tenants, 8);
  std::vector<video::SyntheticDataset> cams;
  for (std::int64_t s = 0; s < max_streams; ++s) {
    auto spec = video::JacksonSpec(bp.width, total_frames + 1,
                                   static_cast<std::uint64_t>(40 + s));
    spec.object_scale = bp.object_scale;
    cams.emplace_back(spec);
  }
  const video::DatasetSpec& spec = cams.front().spec();
  const std::string tap = bench::TapForScale(bp.width);

  auto render = [&](std::int64_t cam, std::int64_t n) {
    std::vector<video::Frame> frames;
    for (std::int64_t i = 0; i < n; ++i) {
      frames.push_back(cams[static_cast<std::size_t>(cam)].RenderFrame(i));
    }
    return frames;
  };

  // Warm the kernel dispatch / allocator before any timed run.
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    fx.RequestTap(tap);
    const video::Frame f = cams[0].RenderFrame(total_frames);
    fx.Extract(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(),
                                  f.width()));
  }

  // --- Baseline: single-stream EdgeNode, all tenants, submit_batch=N ------
  Measurement node_m;
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeNodeConfig cfg;
    cfg.frame_width = spec.width;
    cfg.frame_height = spec.height;
    cfg.fps = spec.fps;
    cfg.enable_upload = false;
    cfg.submit_batch = batch;
    core::EdgeNode node(fx, cfg);
    for (std::int64_t i = 0; i < tenants; ++i) {
      node.Attach({.mc = MakeTenant(fx, spec, tap, i)});
    }
    VectorSource src(render(0, total_frames), spec.fps);
    util::WallTimer timer;
    node.Run(src);
    const double seconds = timer.ElapsedSeconds();
    node_m.frames = node.frames_processed();
    node_m.fps = static_cast<double>(node_m.frames) / seconds;
    node_m.base_s_per_frame =
        node.base_dnn_seconds() / static_cast<double>(node_m.frames);
    node_m.mc_s_per_frame =
        node.mc_seconds() / static_cast<double>(node_m.frames);
    node_m.batches = node.fleet().batches_run();
  }

  util::Table t({"streams", "tenants/stream", "fps",
                 "base DNN (ms/frame)", "MCs (ms/frame)",
                 "buffer (frames/stream/batch)", "vs EdgeNode"});
  auto add_row = [&](const std::string& label, std::int64_t streams,
                     std::int64_t per_stream, const Measurement& m) {
    const double buffer_frames =
        static_cast<double>(m.frames) /
        static_cast<double>(m.batches * streams);
    t.AddRow({label, std::to_string(per_stream),
              util::Table::Num(m.fps, 2),
              util::Table::Num(m.base_s_per_frame * 1e3, 2),
              util::Table::Num(m.mc_s_per_frame * 1e3, 2),
              util::Table::Num(buffer_frames, 2),
              util::Table::Num(m.fps / node_m.fps, 2) + "x"});
    json.NewRow();
    json.Row("config", label);
    json.Row("streams", static_cast<double>(streams));
    json.Row("tenants_per_stream", static_cast<double>(per_stream));
    json.Row("fps", m.fps);
    json.Row("base_dnn_s_per_frame", m.base_s_per_frame);
    json.Row("mc_s_per_frame", m.mc_s_per_frame);
    json.Row("batches", static_cast<double>(m.batches));
    json.Row("buffer_frames_per_stream", buffer_frames);
    json.Row("speedup_vs_node", m.fps / node_m.fps);
  };
  add_row("EdgeNode (baseline)", 1, tenants, node_m);

  // --- Fleet sweep: S streams, T/S tenants each, same batch width ----------
  for (std::int64_t streams = 1; streams <= max_streams; streams *= 2) {
    if (tenants % streams != 0) continue;
    const std::int64_t per_stream = tenants / streams;
    const std::int64_t frames_per_stream = total_frames / streams;
    if (frames_per_stream == 0) {
      std::printf("skipping %lld streams: FF_BENCH_FLEET_FRAMES=%lld leaves "
                  "no frames per stream\n",
                  static_cast<long long>(streams),
                  static_cast<long long>(total_frames));
      continue;
    }

    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeFleetConfig cfg;
    cfg.enable_upload = false;
    cfg.max_batch = batch;
    core::EdgeFleet fleet(fx, cfg);
    std::vector<std::unique_ptr<VectorSource>> sources;
    std::int64_t tenant_i = 0;
    for (std::int64_t s = 0; s < streams; ++s) {
      sources.push_back(std::make_unique<VectorSource>(
          render(s, frames_per_stream), spec.fps));
      const core::StreamHandle h = fleet.AddStream(*sources.back());
      for (std::int64_t k = 0; k < per_stream; ++k) {
        fleet.Attach(h, {.mc = MakeTenant(fx, spec, tap, tenant_i++)});
      }
    }
    util::WallTimer timer;
    fleet.Run();
    const double seconds = timer.ElapsedSeconds();
    Measurement m;
    m.frames = fleet.frames_processed();
    m.fps = static_cast<double>(m.frames) / seconds;
    m.base_s_per_frame =
        fleet.base_dnn_seconds() / static_cast<double>(m.frames);
    m.mc_s_per_frame = fleet.mc_seconds() / static_cast<double>(m.frames);
    m.batches = fleet.batches_run();
    add_row("EdgeFleet x" + std::to_string(streams), streams, per_stream, m);
  }
  t.Print(std::cout);

  std::printf(
      "\nFixed batch width %lld: the fleet fills each base-DNN batch from "
      "different streams, so per-stream buffering falls as ~batch/streams "
      "while phase-1 parallel width (n x out_c) stays constant; with the "
      "total tenant count fixed, per-frame MC work also drops as streams "
      "share the box.\n",
      static_cast<long long>(batch));
  json.Write();
  return 0;
}
