// Fleet scaling: throughput vs number of camera streams on ONE edge box at
// a FIXED total tenant count (the paper's multi-application scenario spread
// across the multi-camera deployments of §2.2.3).
//
// Sweep: S streams share the box, each carrying T/S of the T tenants; the
// phase-1 batch width stays constant, so the fleet fills each base-DNN
// batch from S different streams instead of buffering one stream's future.
// Baseline: the single-stream EdgeNode with all T tenants and
// submit_batch = N (exactly PR 3's batched path).
//
// What the JSON must show (the PR 4 acceptance bar):
//  * fps at S > 1 is >= the single-stream submit_batch baseline (same
//    batch width, same shared base DNN, strictly less MC work per frame);
//  * per-frame buffering latency (frames a stream stages per batch,
//    frames / batches / streams) FALLS as ~N/S while the batch width — and
//    with it phase 1's n × out_c parallel width — stays N.
//
// Modes (stackable flags, all emitting into the same --json file):
//   (default)          the sync fleet sweep above
//   --pipeline         re-run every sweep point through the threaded
//                      staged pipeline (StartPipeline/StopPipeline) and
//                      report pipelined vs synchronous aggregate fps
//   --mixed-geometry   a heterogeneous wall: half the streams at a second
//                      frame size, one fleet, two batch buckets — reports
//                      per-bucket batch occupancy and compares against the
//                      pre-bucket workaround (two homogeneous fleets run
//                      back to back)
//
// Env knobs on top of the shared FF_BENCH_*:
//   FF_BENCH_TENANTS       total tenants T across the box (default 8)
//   FF_BENCH_BATCH         phase-1 batch width N (default 8)
//   FF_BENCH_FLEET_FRAMES  total frames per measurement (default 24)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/edge_fleet.hpp"
#include "core/edge_node.hpp"
#include "nn/kernels.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

// Pre-rendered frames behind the FrameSource interface, so measured time is
// filtering, not synthesis.
class VectorSource : public video::FrameSource {
 public:
  VectorSource(std::vector<video::Frame> frames, std::int64_t fps)
      : frames_(std::move(frames)), fps_(fps) {}

  std::optional<video::Frame> Next() override {
    if (next_ >= frames_.size()) return std::nullopt;
    return frames_[next_++];
  }
  void Reset() override { next_ = 0; }

  std::int64_t width() const override {
    return frames_.empty() ? 0 : frames_.front().width();
  }
  std::int64_t height() const override {
    return frames_.empty() ? 0 : frames_.front().height();
  }
  std::int64_t fps() const override { return fps_; }

 private:
  std::vector<video::Frame> frames_;
  std::int64_t fps_ = 15;
  std::size_t next_ = 0;
};

std::unique_ptr<core::Microclassifier> MakeTenant(
    const dnn::FeatureExtractor& fx, const video::DatasetSpec& spec,
    const std::string& tap, std::int64_t i) {
  const char* arch = i % 2 == 0 ? "windowed" : "localized";
  return core::MakeMicroclassifier(
      arch,
      {.name = std::string(arch) + std::to_string(i), .tap = tap,
       .seed = static_cast<std::uint64_t>(100 + i)},
      fx, spec.height, spec.width);
}

struct Measurement {
  double fps = 0;
  double base_s_per_frame = 0;
  double mc_s_per_frame = 0;
  std::int64_t batches = 0;
  std::int64_t frames = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Fleet scaling: fps vs streams at fixed total tenants",
                     bp);
  const std::int64_t tenants = util::EnvInt("FF_BENCH_TENANTS", 8);
  const std::int64_t batch = util::EnvInt("FF_BENCH_BATCH", 8);
  const std::int64_t total_frames = util::EnvInt("FF_BENCH_FLEET_FRAMES", 24);
  bool mode_pipeline = false, mode_mixed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--pipeline") mode_pipeline = true;
    if (std::string_view(argv[i]) == "--mixed-geometry") mode_mixed = true;
  }
  bench::JsonResult json("fleet_scaling",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  json.Set("tenants_total", static_cast<double>(tenants));
  json.Set("batch", static_cast<double>(batch));
  json.Set("frames_total", static_cast<double>(total_frames));
  json.Set("simd", nn::kernels::IsaName(nn::kernels::ActiveIsa()));

  // One synthetic camera per potential stream (same geometry, different
  // days), frames rendered up front.
  const std::int64_t max_streams = std::min<std::int64_t>(tenants, 8);
  std::vector<video::SyntheticDataset> cams;
  for (std::int64_t s = 0; s < max_streams; ++s) {
    auto spec = video::JacksonSpec(bp.width, total_frames + 1,
                                   static_cast<std::uint64_t>(40 + s));
    spec.object_scale = bp.object_scale;
    cams.emplace_back(spec);
  }
  const video::DatasetSpec& spec = cams.front().spec();
  const std::string tap = bench::TapForScale(bp.width);

  auto render = [&](std::int64_t cam, std::int64_t n) {
    std::vector<video::Frame> frames;
    for (std::int64_t i = 0; i < n; ++i) {
      frames.push_back(cams[static_cast<std::size_t>(cam)].RenderFrame(i));
    }
    return frames;
  };

  // Warm the kernel dispatch / allocator before any timed run.
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    fx.RequestTap(tap);
    const video::Frame f = cams[0].RenderFrame(total_frames);
    fx.Extract(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(),
                                  f.width()));
  }

  // --- Baseline: single-stream EdgeNode, all tenants, submit_batch=N ------
  Measurement node_m;
  {
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeNodeConfig cfg;
    cfg.frame_width = spec.width;
    cfg.frame_height = spec.height;
    cfg.fps = spec.fps;
    cfg.enable_upload = false;
    cfg.submit_batch = batch;
    core::EdgeNode node(fx, cfg);
    for (std::int64_t i = 0; i < tenants; ++i) {
      node.Attach({.mc = MakeTenant(fx, spec, tap, i)});
    }
    VectorSource src(render(0, total_frames), spec.fps);
    util::WallTimer timer;
    node.Run(src);
    const double seconds = timer.ElapsedSeconds();
    node_m.frames = node.frames_processed();
    node_m.fps = static_cast<double>(node_m.frames) / seconds;
    node_m.base_s_per_frame =
        node.base_dnn_seconds() / static_cast<double>(node_m.frames);
    node_m.mc_s_per_frame =
        node.mc_seconds() / static_cast<double>(node_m.frames);
    node_m.batches = node.fleet().batches_run();
  }

  util::Table t({"streams", "tenants/stream", "fps",
                 "base DNN (ms/frame)", "MCs (ms/frame)",
                 "buffer (frames/stream/batch)", "vs EdgeNode"});
  auto add_row = [&](const std::string& label, std::int64_t streams,
                     std::int64_t per_stream, const Measurement& m,
                     const std::string& mode, double vs_sync) {
    const double buffer_frames =
        static_cast<double>(m.frames) /
        static_cast<double>(m.batches * streams);
    t.AddRow({label, std::to_string(per_stream),
              util::Table::Num(m.fps, 2),
              util::Table::Num(m.base_s_per_frame * 1e3, 2),
              util::Table::Num(m.mc_s_per_frame * 1e3, 2),
              util::Table::Num(buffer_frames, 2),
              util::Table::Num(m.fps / node_m.fps, 2) + "x"});
    json.NewRow();
    json.Row("config", label);
    json.Row("mode", mode);
    json.Row("streams", static_cast<double>(streams));
    json.Row("tenants_per_stream", static_cast<double>(per_stream));
    json.Row("fps", m.fps);
    json.Row("base_dnn_s_per_frame", m.base_s_per_frame);
    json.Row("mc_s_per_frame", m.mc_s_per_frame);
    json.Row("batches", static_cast<double>(m.batches));
    json.Row("buffer_frames_per_stream", buffer_frames);
    json.Row("speedup_vs_node", m.fps / node_m.fps);
    if (vs_sync > 0.0) json.Row("fps_vs_sync", vs_sync);
  };
  add_row("EdgeNode (baseline)", 1, tenants, node_m, "sync", 0.0);

  // One homogeneous fleet run: S streams, T/S tenants each, through either
  // the synchronous Step() schedule or the threaded staged pipeline.
  auto run_fleet = [&](std::int64_t streams, std::int64_t per_stream,
                       bool pipelined) {
    const std::int64_t frames_per_stream = total_frames / streams;
    dnn::FeatureExtractor fx({.include_classifier = false});
    core::EdgeFleetConfig cfg;
    cfg.enable_upload = false;
    cfg.max_batch = batch;
    core::EdgeFleet fleet(fx, cfg);
    std::vector<std::unique_ptr<VectorSource>> sources;
    std::int64_t tenant_i = 0;
    for (std::int64_t s = 0; s < streams; ++s) {
      sources.push_back(std::make_unique<VectorSource>(
          render(s, frames_per_stream), spec.fps));
      const core::StreamHandle h = fleet.AddStream(*sources.back());
      for (std::int64_t k = 0; k < per_stream; ++k) {
        fleet.Attach(h, {.mc = MakeTenant(fx, spec, tap, tenant_i++)});
      }
    }
    util::WallTimer timer;
    if (pipelined) {
      fleet.RunPipelined();
    } else {
      fleet.Run();
    }
    const double seconds = timer.ElapsedSeconds();
    Measurement m;
    m.frames = fleet.frames_processed();
    m.fps = static_cast<double>(m.frames) / seconds;
    m.base_s_per_frame =
        fleet.base_dnn_seconds() / static_cast<double>(m.frames);
    m.mc_s_per_frame = fleet.mc_seconds() / static_cast<double>(m.frames);
    m.batches = fleet.batches_run();
    return m;
  };

  // --- Fleet sweep: S streams, T/S tenants each, same batch width ----------
  for (std::int64_t streams = 1; streams <= max_streams; streams *= 2) {
    if (tenants % streams != 0) continue;
    const std::int64_t per_stream = tenants / streams;
    if (total_frames / streams == 0) {
      std::printf("skipping %lld streams: FF_BENCH_FLEET_FRAMES=%lld leaves "
                  "no frames per stream\n",
                  static_cast<long long>(streams),
                  static_cast<long long>(total_frames));
      continue;
    }
    const Measurement m = run_fleet(streams, per_stream, /*pipelined=*/false);
    add_row("EdgeFleet x" + std::to_string(streams), streams, per_stream, m,
            "sync", 0.0);
    if (mode_pipeline) {
      const Measurement p = run_fleet(streams, per_stream, /*pipelined=*/true);
      add_row("EdgeFleet x" + std::to_string(streams) + " pipelined", streams,
              per_stream, p, "pipelined", p.fps / m.fps);
    }
  }
  t.Print(std::cout);

  std::printf(
      "\nFixed batch width %lld: the fleet fills each base-DNN batch from "
      "different streams, so per-stream buffering falls as ~batch/streams "
      "while phase-1 parallel width (n x out_c) stays constant; with the "
      "total tenant count fixed, per-frame MC work also drops as streams "
      "share the box.%s\n",
      static_cast<long long>(batch),
      mode_pipeline
          ? " Pipelined rows overlap source decode with phase 1 + MC "
            "inference on dedicated stage threads (wins scale with cores; "
            "on a 1-core box they measure scheduling overhead)."
          : "");

  // --- Mixed-geometry wall: two buckets, one fleet ------------------------
  if (mode_mixed) {
    // Half the wall at a second frame size (3/4 linear, snapped to the
    // codec's 16-pixel macroblock grid).
    std::int64_t w2 = bp.width * 3 / 4 / 16 * 16;
    if (w2 < 64) w2 = 64;
    // Streams per geometry; the full-res wall reuses the sweep's cams,
    // which hold only max_streams datasets (min(FF_BENCH_TENANTS, 8)).
    const std::int64_t per_wall = std::min<std::int64_t>(2, max_streams);
    const std::int64_t frames_per_stream =
        std::max<std::int64_t>(1, total_frames / (2 * per_wall));
    const std::int64_t mcs_per_stream =
        std::max<std::int64_t>(1, tenants / (2 * per_wall));
    std::vector<video::SyntheticDataset> cams2;
    for (std::int64_t s = 0; s < per_wall; ++s) {
      auto spec2 = video::JacksonSpec(w2, frames_per_stream + 1,
                                      static_cast<std::uint64_t>(50 + s));
      spec2.object_scale = bp.object_scale;
      cams2.emplace_back(spec2);
    }
    const std::string tap2 = bench::TapForScale(w2);
    auto render2 = [&](std::int64_t cam, std::int64_t n) {
      std::vector<video::Frame> frames;
      for (std::int64_t i = 0; i < n; ++i) {
        frames.push_back(cams2[static_cast<std::size_t>(cam)].RenderFrame(i));
      }
      return frames;
    };

    struct WallRun {
      double fps = 0;
      double seconds = 0;
      std::int64_t frames = 0;
    };
    // `which`: 0 = big wall only, 1 = small wall only, 2 = both (mixed).
    auto run_wall = [&](int which, bool pipelined,
                        std::vector<core::BucketStats>* stats) {
      dnn::FeatureExtractor fx({.include_classifier = false});
      core::EdgeFleetConfig cfg;
      cfg.enable_upload = false;
      cfg.max_batch = batch;
      core::EdgeFleet fleet(fx, cfg);
      std::vector<std::unique_ptr<VectorSource>> sources;
      std::int64_t tenant_i = 0;
      for (std::int64_t s = 0; s < per_wall; ++s) {
        if (which != 1) {
          sources.push_back(std::make_unique<VectorSource>(
              render(s, frames_per_stream), spec.fps));
          const core::StreamHandle h = fleet.AddStream(*sources.back());
          for (std::int64_t k = 0; k < mcs_per_stream; ++k) {
            fleet.Attach(h, {.mc = MakeTenant(fx, spec, tap, tenant_i++)});
          }
        }
        if (which != 0) {
          sources.push_back(std::make_unique<VectorSource>(
              render2(s, frames_per_stream), cams2[0].spec().fps));
          const core::StreamHandle h = fleet.AddStream(*sources.back());
          for (std::int64_t k = 0; k < mcs_per_stream; ++k) {
            fleet.Attach(h, {.mc = MakeTenant(fx, cams2[0].spec(), tap2,
                                              tenant_i++)});
          }
        }
      }
      util::WallTimer timer;
      if (pipelined) {
        fleet.RunPipelined();
      } else {
        fleet.Run();
      }
      WallRun out;
      out.seconds = timer.ElapsedSeconds();
      out.frames = fleet.frames_processed();
      out.fps = static_cast<double>(out.frames) / out.seconds;
      if (stats != nullptr) *stats = fleet.bucket_stats();
      return out;
    };

    std::vector<core::BucketStats> stats;
    const WallRun mixed = run_wall(/*which=*/2, /*pipelined=*/false, &stats);
    const WallRun mixed_pipe =
        run_wall(/*which=*/2, /*pipelined=*/true, nullptr);
    // The pre-bucket workaround: one fleet per geometry, run back to back
    // (filtering seconds only — setup/rendering is excluded for every arm).
    const WallRun big = run_wall(/*which=*/0, /*pipelined=*/false, nullptr);
    const WallRun small = run_wall(/*which=*/1, /*pipelined=*/false, nullptr);
    const double seq_fps = static_cast<double>(big.frames + small.frames) /
                           (big.seconds + small.seconds);

    util::Table mt({"mixed wall config", "streams", "fps", "vs sequential"});
    auto add_mixed = [&](const std::string& label, double fps,
                         std::int64_t frames, const std::string& mode) {
      mt.AddRow({label, std::to_string(2 * per_wall),
                 util::Table::Num(fps, 2),
                 util::Table::Num(fps / seq_fps, 2) + "x"});
      json.NewRow();
      json.Row("config", label);
      json.Row("mode", mode);
      json.Row("streams", static_cast<double>(2 * per_wall));
      json.Row("fps", fps);
      json.Row("frames", static_cast<double>(frames));
      json.Row("fps_vs_sequential", fps / seq_fps);
    };
    add_mixed("two fleets sequential (pre-bucket)", seq_fps,
              big.frames + small.frames, "sequential");
    add_mixed("mixed-geometry fleet", mixed.fps, mixed.frames, "mixed-sync");
    add_mixed("mixed-geometry fleet pipelined", mixed_pipe.fps,
              mixed_pipe.frames, "mixed-pipelined");
    std::printf("\nMixed-geometry wall (%lldx and %lldx side by side, "
                "%lld streams each):\n",
                static_cast<long long>(bp.width), static_cast<long long>(w2),
                static_cast<long long>(per_wall));
    mt.Print(std::cout);
    for (const auto& b : stats) {
      const double occupancy =
          b.batches > 0 ? static_cast<double>(b.frames) /
                              static_cast<double>(b.batches)
                        : 0.0;
      std::printf("  bucket %lldx%lld: %lld batches, %lld frames, "
                  "avg occupancy %.2f / %lld\n",
                  static_cast<long long>(b.width),
                  static_cast<long long>(b.height),
                  static_cast<long long>(b.batches),
                  static_cast<long long>(b.frames), occupancy,
                  static_cast<long long>(batch));
      json.NewRow();
      json.Row("config", "bucket " + std::to_string(b.width) + "x" +
                             std::to_string(b.height));
      json.Row("mode", "bucket-stats");
      json.Row("streams", static_cast<double>(b.streams));
      json.Row("batches", static_cast<double>(b.batches));
      json.Row("frames", static_cast<double>(b.frames));
      json.Row("batch_occupancy", occupancy);
    }
  }
  json.Write();
  return 0;
}
