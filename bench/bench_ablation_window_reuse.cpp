// Ablation of the windowed MC's 1x1-conv buffer reuse (paper §3.3.3: "the
// 1x1 convolutions are only computed once, and their outputs are buffered
// and reused by subsequent windows, eliminating redundant computation").
//
// Measures per-frame inference time and analytic multiply-adds with the
// optimization on and off, verifying outputs stay identical.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace ff;
using bench::BenchParams;

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Ablation: windowed MC 1x1 buffer reuse", bp);
  bench::JsonResult json("ablation_window_reuse",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  const std::int64_t n_frames = util::EnvInt("FF_BENCH_FRAMES", 8) + 1;

  auto spec = video::RoadwaySpec(bp.width, n_frames + 1, 33);
  spec.object_scale = bp.object_scale;
  const video::SyntheticDataset ds(spec);
  const std::string tap = bench::TapForScale(bp.width);

  dnn::FeatureExtractor fx({.include_classifier = false});
  fx.RequestTap(tap);
  core::McConfig cfg{.name = "win", .tap = tap, .seed = 9};
  cfg.pixel_crop = spec.crop;
  core::WindowedLocalizedMc with_reuse(cfg, fx, spec.height, spec.width, 5,
                                       /*reuse_buffers=*/true);
  core::WindowedLocalizedMc without_reuse(cfg, fx, spec.height, spec.width, 5,
                                          /*reuse_buffers=*/false);

  // Extract features once.
  std::vector<dnn::FeatureMaps> fms;
  for (std::int64_t i = 0; i < n_frames; ++i) {
    const video::Frame f = ds.RenderFrame(i);
    fms.push_back(fx.Extract(dnn::PreprocessRgb(f.r(), f.g(), f.b(),
                                                f.height(), f.width())));
  }

  // Verify equivalence and time both paths.
  double max_diff = 0.0;
  util::WallTimer t1;
  std::vector<float> a;
  for (const auto& fm : fms) a.push_back(with_reuse.Infer(fm));
  const double reuse_ms = t1.ElapsedMillis() / static_cast<double>(fms.size());
  util::WallTimer t2;
  std::vector<float> b;
  for (const auto& fm : fms) b.push_back(without_reuse.Infer(fm));
  const double naive_ms = t2.ElapsedMillis() / static_cast<double>(fms.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(a[i] - b[i])));
  }

  util::Table t({"variant", "ms/frame", "M multiply-adds/frame"});
  t.AddRow({"with buffer reuse (paper)", util::Table::Num(reuse_ms, 3),
            util::Table::Num(
                static_cast<double>(with_reuse.MarginalMacsPerFrame()) / 1e6,
                2)});
  t.AddRow({"without reuse", util::Table::Num(naive_ms, 3),
            util::Table::Num(
                static_cast<double>(with_reuse.MarginalMacsWithoutReuse()) /
                    1e6,
                2)});
  t.Print(std::cout);
  std::printf("\nspeedup: %.2fx measured, %.2fx analytic; max output "
              "difference: %.2e (must be ~0 — the optimization is exact)\n",
              naive_ms / reuse_ms,
              static_cast<double>(with_reuse.MarginalMacsWithoutReuse()) /
                  static_cast<double>(with_reuse.MarginalMacsPerFrame()),
              max_diff);
  json.Set("reuse_ms_per_frame", reuse_ms);
  json.Set("no_reuse_ms_per_frame", naive_ms);
  json.Set("measured_speedup_x", naive_ms / reuse_ms);
  json.Set("analytic_speedup_x",
           static_cast<double>(with_reuse.MarginalMacsWithoutReuse()) /
               static_cast<double>(with_reuse.MarginalMacsPerFrame()));
  json.Set("max_output_diff", max_diff);
  json.Write();
  return 0;
}
