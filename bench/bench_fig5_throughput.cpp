// Fig. 5 reproduction: filtering throughput (fps) vs number of concurrent
// classifiers for FilterForward's three MC architectures, NoScope-style
// discrete classifiers, and multiple full MobileNets.
//
// Paper shapes this bench must reproduce:
//  * single classifier: FF runs at ~0.32-0.34x the DCs' speed;
//  * FF overtakes the DCs at 3-4 concurrent classifiers;
//  * by 20 classifiers FF is ~3-4x faster; by 50, up to ~6x;
//  * multiple MobileNets are never optimal and hit OOM at paper scale
//    beyond ~30 instances (flagged analytically below).
//
// All systems run on the same frames at the same resolution through the
// same kernels, as in the paper's testbed. Throughput is measured, not
// modeled. Weights are untrained (throughput does not depend on values).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "baselines/discrete.hpp"
#include "baselines/mobilenet_filter.hpp"
#include "bench_common.hpp"
#include "core/edge_node.hpp"
#include "nn/kernels.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

// FF_BENCH_QUANT=1 re-runs the FilterForward side on the int8 path: a
// quantize=true extractor (auto-calibrated on the warmup frame) plus
// quantized MCs for the single-frame architectures (windowed keeps its
// float net — it does not support quantize). Baselines stay float either
// way; they model competing systems, not our kernels.
const bool kQuantized = ff::util::EnvInt("FF_BENCH_QUANT", 0) != 0;

std::vector<std::int64_t> ClassifierCounts(std::int64_t max) {
  std::vector<std::int64_t> counts;
  for (const std::int64_t c : {1, 2, 3, 4, 5, 8, 12, 20, 35, 50}) {
    if (c <= max) counts.push_back(c);
  }
  return counts;
}

// Renders the measurement frames once (shared by all systems).
std::vector<video::Frame> RenderFrames(const video::SyntheticDataset& ds,
                                       std::int64_t n) {
  std::vector<video::Frame> frames;
  for (std::int64_t i = 0; i < n; ++i) frames.push_back(ds.RenderFrame(i));
  return frames;
}

double MeasureFilterForward(const std::string& arch,
                            const video::SyntheticDataset& ds,
                            const std::vector<video::Frame>& frames,
                            std::int64_t n_classifiers,
                            std::int64_t submit_batch) {
  dnn::FeatureExtractor fx(dnn::FeatureExtractorConfig{
      {.include_classifier = false}, /*quantize=*/kQuantized});
  // The paper's feature extractor evaluates the complete base DNN every
  // frame (its break-even analysis assumes the full MobileNet cost). Our
  // extractor can stop at the deepest requested tap — an extension beyond
  // the paper — so for a faithful Fig. 5 we force the full backbone.
  fx.RequestTap("conv6/sep");
  core::EdgeNodeConfig cfg;
  cfg.frame_width = ds.spec().width;
  cfg.frame_height = ds.spec().height;
  cfg.fps = ds.spec().fps;
  cfg.enable_upload = false;  // measure pure filtering, like the paper
  // Phase 2 fans MC inference out across the thread pool; set
  // FF_BENCH_MC_PARALLEL=0 to measure the single-threaded MC phase instead.
  cfg.parallel_mcs = util::EnvInt("FF_BENCH_MC_PARALLEL", 1) != 0;
  core::EdgeNode node(fx, cfg);
  const std::string tap = arch == "full_frame"
                              ? bench::LateTapForScale(ds.spec().width)
                              : bench::TapForScale(ds.spec().width);
  for (std::int64_t i = 0; i < n_classifiers; ++i) {
    node.Attach({.mc = core::MakeMicroclassifier(
                     arch,
                     {.name = arch + std::to_string(i), .tap = tap,
                      .seed = static_cast<std::uint64_t>(100 + i),
                      .quantize = kQuantized && arch != "windowed"},
                     fx, ds.spec().height, ds.spec().width)});
  }
  // Warmup one frame, then measure; FF_BENCH_BATCH > 1 measures the batched
  // Submit path (identical decisions, wider phase-1 parallelism).
  node.Submit(frames[0]);
  const std::span<const video::Frame> rest(frames.data() + 1,
                                           frames.size() - 1);
  util::WallTimer timer;
  if (submit_batch <= 1) {
    for (const auto& frame : rest) node.Submit(frame);
  } else {
    for (std::size_t i = 0; i < rest.size();
         i += static_cast<std::size_t>(submit_batch)) {
      node.Submit(rest.subspan(
          i, std::min(static_cast<std::size_t>(submit_batch),
                      rest.size() - i)));
    }
  }
  const double seconds = timer.ElapsedSeconds();
  node.Drain();
  return static_cast<double>(frames.size() - 1) / seconds;
}

double MeasurePixelBank(
    const std::vector<video::Frame>& frames,
    const std::function<float(const nn::Tensor&)>& infer_all) {
  // Warmup.
  {
    const auto& f = frames[0];
    infer_all(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(), f.width()));
  }
  util::WallTimer timer;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const auto& f = frames[i];
    infer_all(dnn::PreprocessRgb(f.r(), f.g(), f.b(), f.height(), f.width()));
  }
  return static_cast<double>(frames.size() - 1) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Fig. 5: throughput vs number of classifiers", bp);
  const std::int64_t max_classifiers =
      util::EnvInt("FF_BENCH_MAX_CLASSIFIERS", 50);
  const std::int64_t n_frames = util::EnvInt("FF_BENCH_FRAMES", 3) + 1;
  const std::int64_t submit_batch = util::EnvInt("FF_BENCH_BATCH", 1);
  bench::JsonResult json("fig5_throughput",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);
  json.Set("frames_per_point", static_cast<double>(n_frames - 1));
  json.Set("submit_batch", static_cast<double>(submit_batch));
  json.Set("quantized", kQuantized ? 1.0 : 0.0);

  auto spec = video::JacksonSpec(bp.width, n_frames + 1, 31);
  spec.object_scale = bp.object_scale;
  const video::SyntheticDataset ds(spec);
  const auto frames = RenderFrames(ds, n_frames);
  const std::int64_t H = ds.spec().height, W = ds.spec().width;

  // Full base DNN cost at this resolution (the paper's extractor runs the
  // whole backbone), for the DC representative choice.
  dnn::FeatureExtractor probe({.include_classifier = false});
  probe.RequestTap("conv6/sep");
  const std::uint64_t base_macs = probe.MacsPerFrame(H, W);

  // Representative DC: the costliest Pareto-frontier member (the paper's
  // 100M-2.5B multiply-add family tops out at ~12% of the base DNN's cost;
  // we pick the family member closest to that upper end). Note the paper's
  // measured crossover (3-4 classifiers) reflects its DCs running on a
  // slower-per-MAC framework (TensorFlow) than its base DNN (Intel Caffe +
  // MKL-DNN); with both sides on identical kernels, the MAC-faithful
  // crossover lands somewhat later (see EXPERIMENTS.md).
  baselines::DiscreteClassifierSpec rep{};
  std::uint64_t best_diff = UINT64_MAX;
  for (const auto& s : baselines::DiscreteClassifierFamily()) {
    const auto macs = baselines::DiscreteClassifierMacs(s, H, W);
    const auto target = base_macs / 8;  // ~the family's costliest member
    const auto diff = macs > target ? macs - target : target - macs;
    if (diff < best_diff) {
      best_diff = diff;
      rep = s;
    }
  }
  std::printf("base DNN: %.1f M multiply-adds/frame; DC representative '%s': "
              "%.1f M (ratio %.2f)\n\n",
              static_cast<double>(base_macs) / 1e6, rep.name.c_str(),
              static_cast<double>(baselines::DiscreteClassifierMacs(rep, H, W)) /
                  1e6,
              static_cast<double>(baselines::DiscreteClassifierMacs(rep, H, W)) /
                  static_cast<double>(base_macs));

  const std::uint64_t mobilenet_bytes_paper_scale =
      baselines::MobileNetFilter::EstimateBytes(1080, 1920);

  util::Table t({"classifiers", "FF full-frame (fps)", "FF windowed (fps)",
                 "FF localized (fps)", "discrete classifiers (fps)",
                 "multiple MobileNets (fps)", "MobileNets note"});
  double ff_at_1 = 0, dc_at_1 = 0;
  double ff_last = 0, dc_last = 0;
  std::int64_t crossover = -1;
  for (const std::int64_t k : ClassifierCounts(max_classifiers)) {
    const double ff_full =
        MeasureFilterForward("full_frame", ds, frames, k, submit_batch);
    const double ff_win =
        MeasureFilterForward("windowed", ds, frames, k, submit_batch);
    const double ff_loc =
        MeasureFilterForward("localized", ds, frames, k, submit_batch);

    std::vector<std::unique_ptr<baselines::DiscreteClassifier>> dcs;
    for (std::int64_t i = 0; i < k; ++i) {
      auto s = rep;
      s.seed = static_cast<std::uint64_t>(200 + i);
      dcs.push_back(std::make_unique<baselines::DiscreteClassifier>(s, H, W));
    }
    const double dc_fps = MeasurePixelBank(frames, [&](const nn::Tensor& px) {
      float acc = 0;
      for (auto& dc : dcs) acc += dc->Infer(px);
      return acc;
    });

    std::vector<std::unique_ptr<baselines::MobileNetFilter>> mobs;
    for (std::int64_t i = 0; i < k; ++i) {
      mobs.push_back(std::make_unique<baselines::MobileNetFilter>(
          H, W, static_cast<std::uint64_t>(300 + i)));
    }
    const double mob_fps = MeasurePixelBank(frames, [&](const nn::Tensor& px) {
      float acc = 0;
      for (auto& m : mobs) acc += m->Infer(px);
      return acc;
    });
    // Paper-scale memory check (TF/Caffe overhead ~2x raw tensors).
    const double paper_gb = static_cast<double>(k) * 2.0 *
                            static_cast<double>(mobilenet_bytes_paper_scale) /
                            (1024.0 * 1024.0 * 1024.0);
    const std::string note =
        paper_gb > 32.0 ? "OOM at paper scale (" +
                              util::Table::Num(paper_gb, 0) + " GB > 32 GB)"
                        : util::Table::Num(paper_gb, 1) + " GB at paper scale";

    t.AddRow({std::to_string(k), util::Table::Num(ff_full, 2),
              util::Table::Num(ff_win, 2), util::Table::Num(ff_loc, 2),
              util::Table::Num(dc_fps, 2), util::Table::Num(mob_fps, 2),
              note});
    json.NewRow();
    json.Row("classifiers", static_cast<double>(k));
    json.Row("ff_full_frame_fps", ff_full);
    json.Row("ff_windowed_fps", ff_win);
    json.Row("ff_localized_fps", ff_loc);
    json.Row("discrete_fps", dc_fps);
    json.Row("mobilenets_fps", mob_fps);
    const double ff_best = std::max({ff_full, ff_win, ff_loc});
    if (k == 1) {
      ff_at_1 = ff_best;
      dc_at_1 = dc_fps;
    }
    if (crossover < 0 && ff_best > dc_fps) crossover = k;
    ff_last = ff_best;
    dc_last = dc_fps;
  }
  t.Print(std::cout);

  std::printf("\nsummary (paper: 0.32-0.34x at 1, crossover at 3-4, up to "
              "6.1x at 50):\n");
  std::printf("  FF/DC speed at 1 classifier : %.2fx\n", ff_at_1 / dc_at_1);
  std::printf("  crossover (FF beats DCs)    : %lld classifiers\n",
              static_cast<long long>(crossover));
  std::printf("  FF/DC speed at %lld         : %.2fx\n",
              static_cast<long long>(max_classifiers), ff_last / dc_last);
  json.Set("ff_dc_ratio_at_1", ff_at_1 / dc_at_1);
  json.Set("crossover_classifiers", static_cast<double>(crossover));
  json.Set("ff_dc_ratio_at_max", ff_last / dc_last);
  json.Set("base_dnn_mmacs", static_cast<double>(base_macs) / 1e6);
  json.Write();
  return 0;
}
