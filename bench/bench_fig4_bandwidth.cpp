// Fig. 4 reproduction: average bandwidth use vs event F1 on the Roadway
// "People with red" task, for two offload strategies:
//
//   * FilterForward — the real edge pipeline filters the ORIGINAL stream;
//     matched frames are re-encoded and uploaded. The series sweeps the
//     MC's operating point (threshold around the calibrated value) and two
//     upload bitrates.
//   * Compress everything — the whole stream is encoded at a target bitrate
//     and the SAME trained MC runs on the decoded frames in "the cloud".
//     The series sweeps the stream bitrate.
//
// Paper shapes: FF uses ~6-13x less bandwidth at its operating point than
// full-stream compression at comparable accuracy, and at matched bandwidth
// FF's F1 is ~1.5-1.9x higher (heavy compression destroys the small red
// articles the task depends on).
//
// One panel per MC architecture (4a full-frame object detector, 4b
// localized binary classifier).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "codec/transcode.hpp"

using namespace ff;
using bench::BenchParams;

namespace {

struct SeriesPoint {
  double bandwidth_bps;
  double f1;
  std::string label;
};

// Uplink bytes for a given set of matched-frame decisions at a bitrate
// (I-frame restart at each segment start, exactly like core::EdgeNode).
std::uint64_t UploadBytes(const video::SyntheticDataset& ds,
                          const std::vector<std::uint8_t>& decisions,
                          double bitrate_bps) {
  codec::EncoderConfig ec;
  ec.width = ds.spec().width;
  ec.height = ds.spec().height;
  ec.fps = ds.spec().fps;
  ec.target_bitrate_bps = bitrate_bps;
  codec::Encoder enc(ec);
  std::int64_t last = -2;
  for (std::int64_t t = 0; t < ds.n_frames(); ++t) {
    if (!decisions[static_cast<std::size_t>(t)]) continue;
    enc.EncodeFrame(ds.RenderFrame(t), t != last + 1);
    last = t;
  }
  return enc.total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader(
      "Fig. 4: bandwidth vs event F1 (Roadway, People with red)", bp);
  bench::JsonResult json("fig4_bandwidth",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);

  const video::SyntheticDataset train_ds(
      bench::TrainSpec(video::Profile::kRoadway, bp));
  const video::SyntheticDataset test_ds(
      bench::TestSpec(video::Profile::kRoadway, bp));
  const double test_seconds = test_ds.spec().duration_seconds();
  const std::string tap = bench::TapForScale(bp.width);

  // "Sufficiently good quality" upload bitrates for this codec/resolution
  // (the paper used 250/500 Kb/s for its H.264 at 2048x850; quality, not
  // bits, is the transferable quantity — see docs/ARCHITECTURE.md, "Codec:
  // the H.264 stand-in").
  const double px_rate = static_cast<double>(test_ds.spec().width *
                                             test_ds.spec().height *
                                             test_ds.spec().fps);
  const double bpp_good = 0.10;  // ~transparent for this codec
  const std::vector<double> upload_bitrates = {bpp_good * px_rate * 0.5,
                                               bpp_good * px_rate};
  const std::vector<double> stream_bitrates = {
      bpp_good * px_rate * 0.125, bpp_good * px_rate * 0.25,
      bpp_good * px_rate * 0.5,   bpp_good * px_rate,
      bpp_good * px_rate * 2.0,   bpp_good * px_rate * 4.0};

  struct ArchSpec {
    const char* arch;
    const char* panel;
    double epochs;
  };
  for (const ArchSpec as : {ArchSpec{"full_frame", "4a", 6.0},
                            ArchSpec{"localized", "4b", 2.0}}) {
    std::printf("--- Fig. %s: %s MC ---\n", as.panel, as.arch);
    core::McConfig cfg{.name = as.arch, .tap = tap};
    cfg.pixel_crop = train_ds.spec().crop;
    std::printf("training (%.1f epochs)...\n", as.epochs);
    dnn::FeatureExtractor train_fx({.include_classifier = false});
    auto trained = bench::TrainOneMc(as.arch, train_ds, train_fx, cfg,
                                     as.epochs);

    // Score the ORIGINAL test stream once (edge-side FF).
    dnn::FeatureExtractor fx({.include_classifier = false});
    fx.RequestTap(tap);
    train::McScorer scorer(*trained.mc);
    train::StreamDatasetFeatures(test_ds, fx, 0, test_ds.n_frames(),
                                 [&](std::int64_t, const dnn::FeatureMaps& fm) {
                                   scorer.Observe(fm);
                                 });
    const auto edge_scores = scorer.Finish();

    std::vector<SeriesPoint> ff_series;
    std::size_t ff_main_idx = 0;  // calibrated threshold at good quality
    // Operating-point sweep: thresholds around the calibrated value.
    for (const float dthr : {-0.15f, 0.0f, 0.15f}) {
      const float thr = std::clamp(trained.threshold + dthr, 0.02f, 0.98f);
      std::vector<std::uint8_t> raw(edge_scores.size());
      for (std::size_t i = 0; i < raw.size(); ++i) {
        raw[i] = edge_scores[i] >= thr ? 1 : 0;
      }
      const auto decisions = core::SmoothLabels(raw, 5, 2);
      const auto m = metrics::ComputeEventMetrics(test_ds.labels(),
                                                  test_ds.events(), decisions);
      for (const double bps : upload_bitrates) {
        if (dthr != 0.0f && bps != upload_bitrates.back()) continue;
        const std::uint64_t bytes = UploadBytes(test_ds, decisions, bps);
        if (dthr == 0.0f && bps == upload_bitrates.back()) {
          ff_main_idx = ff_series.size();
        }
        ff_series.push_back(
            {static_cast<double>(bytes) * 8.0 / test_seconds, m.f1,
             "thr=" + util::Table::Num(thr, 2) +
                 " q=" + util::Table::Num(bps / 1000, 0) + "kb/s"});
      }
    }

    // Compress-everything: decode at each stream bitrate, filter in the
    // cloud with the same MC/threshold.
    std::vector<SeriesPoint> ce_series;
    for (const double bps : stream_bitrates) {
      video::DatasetSource inner(test_ds);
      codec::EncoderConfig ec;
      ec.width = test_ds.spec().width;
      ec.height = test_ds.spec().height;
      ec.fps = test_ds.spec().fps;
      ec.target_bitrate_bps = bps;
      codec::TranscodedSource compressed(inner, ec);
      trained.mc->ResetTemporalState();
      train::McScorer cloud_scorer(*trained.mc);
      train::StreamSourceFeatures(compressed, fx,
                                  [&](std::int64_t, const dnn::FeatureMaps& fm) {
                                    cloud_scorer.Observe(fm);
                                  });
      const auto cloud_scores = cloud_scorer.Finish();
      const auto m =
          bench::EvalScores(cloud_scores, test_ds, trained.threshold);
      ce_series.push_back({compressed.AverageBitrateBps(), m.f1,
                           "target=" + util::Table::Num(bps / 1000, 0) +
                               "kb/s"});
    }

    util::Table t({"strategy", "operating point", "avg bandwidth (kb/s)",
                   "event F1"});
    for (const auto& p : ff_series) {
      t.AddRow({"FilterForward", p.label,
                util::Table::Num(p.bandwidth_bps / 1000, 1),
                util::Table::Num(p.f1, 3)});
    }
    for (const auto& p : ce_series) {
      t.AddRow({"Compress everything", p.label,
                util::Table::Num(p.bandwidth_bps / 1000, 1),
                util::Table::Num(p.f1, 3)});
    }
    t.Print(std::cout);
    for (const auto* series : {&ff_series, &ce_series}) {
      for (const auto& p : *series) {
        json.NewRow();
        json.Row("panel", as.panel);
        json.Row("arch", as.arch);
        json.Row("strategy", series == &ff_series ? "filterforward"
                                                  : "compress_everything");
        json.Row("operating_point", p.label);
        json.Row("bandwidth_kbps", p.bandwidth_bps / 1000);
        json.Row("event_f1", p.f1);
      }
    }

    // Summary ratios: compare FF's main point against the cheapest
    // compress-everything point with F1 >= FF's (bandwidth ratio), and the
    // compressed point nearest FF's bandwidth (accuracy ratio).
    const SeriesPoint& ff_main = ff_series[ff_main_idx];
    double ce_band_at_f1 = -1;
    for (const auto& p : ce_series) {
      if (p.f1 >= ff_main.f1 * 0.95 &&
          (ce_band_at_f1 < 0 || p.bandwidth_bps < ce_band_at_f1)) {
        ce_band_at_f1 = p.bandwidth_bps;
      }
    }
    const SeriesPoint* nearest = &ce_series[0];
    for (const auto& p : ce_series) {
      if (std::abs(std::log(p.bandwidth_bps / ff_main.bandwidth_bps)) <
          std::abs(std::log(nearest->bandwidth_bps / ff_main.bandwidth_bps))) {
        nearest = &p;
      }
    }
    std::printf("\nFF point: %.1f kb/s at F1 %.3f\n",
                ff_main.bandwidth_bps / 1000, ff_main.f1);
    json.Set(std::string(as.arch) + "_ff_kbps", ff_main.bandwidth_bps / 1000);
    json.Set(std::string(as.arch) + "_ff_f1", ff_main.f1);
    json.Set(std::string(as.arch) + "_bandwidth_saving_x",
             ce_band_at_f1 > 0 ? ce_band_at_f1 / ff_main.bandwidth_bps : -1.0);
    if (ce_band_at_f1 > 0) {
      std::printf("bandwidth saving vs compression at matched F1: %.1fx "
                  "(paper: 6.3x full-frame, 13x localized)\n",
                  ce_band_at_f1 / ff_main.bandwidth_bps);
    } else {
      std::printf("no compress-everything point reaches FF's F1 — saving "
                  "exceeds the sweep range (paper: 6.3-13x)\n");
    }
    std::printf("F1 vs compression at matched bandwidth (%.1f kb/s): "
                "%.3f vs %.3f = %.2fx (paper: 1.5-1.9x)\n\n",
                nearest->bandwidth_bps / 1000, ff_main.f1, nearest->f1,
                nearest->f1 > 0 ? ff_main.f1 / nearest->f1 : 0.0);
    json.Set(std::string(as.arch) + "_f1_ratio_at_matched_bandwidth",
             nearest->f1 > 0 ? ff_main.f1 / nearest->f1 : 0.0);
  }
  json.Write();
  return 0;
}
