// Ablation of the two microclassifier input choices the paper calls out:
//   * feature-map crop vs no crop (§3.2: cropping "increases accuracy (for
//     certain applications)" and cuts marginal cost proportionally);
//   * which base-DNN layer to tap (§3.4: "Choosing which base DNN layer to
//     use as input to each microclassifier is critical to their accuracy").
//
// Grid: {crop, no-crop} x {tap layers} for the localized MC on Roadway.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace ff;
using bench::BenchParams;

int main(int argc, char** argv) {
  BenchParams bp;
  bp.train_frames = util::EnvInt("FF_BENCH_TRAIN_FRAMES", 1600);
  bp.test_frames = util::EnvInt("FF_BENCH_TEST_FRAMES", 700);
  bench::PrintHeader("Ablation: spatial crop and tap-layer choice", bp);
  bench::JsonResult json("ablation_crop_layer",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);

  const video::SyntheticDataset train_ds(
      bench::TrainSpec(video::Profile::kRoadway, bp));
  const video::SyntheticDataset test_ds(
      bench::TestSpec(video::Profile::kRoadway, bp));

  util::Table t({"tap layer", "crop", "marginal M-MACs", "event F1",
                 "recall", "precision"});
  for (const std::string& tap :
       {std::string("conv2_2/sep"), std::string("conv3_2/sep"),
        std::string("conv4_2/sep")}) {
    for (const bool crop : {true, false}) {
      core::McConfig cfg{.name = "loc_" + tap + (crop ? "_crop" : "_full"),
                         .tap = tap};
      if (crop) cfg.pixel_crop = train_ds.spec().crop;
      dnn::FeatureExtractor train_fx({.include_classifier = false});
      std::printf("training localized MC on %s (%s)...\n", tap.c_str(),
                  crop ? "cropped" : "full frame");
      auto trained = bench::TrainOneMc("localized", train_ds, train_fx, cfg,
                                       bp.epochs);
      dnn::FeatureExtractor fx({.include_classifier = false});
      fx.RequestTap(tap);
      train::McScorer scorer(*trained.mc);
      train::StreamDatasetFeatures(
          test_ds, fx, 0, test_ds.n_frames(),
          [&](std::int64_t, const dnn::FeatureMaps& fm) { scorer.Observe(fm); });
      const auto m =
          bench::EvalScores(scorer.Finish(), test_ds, trained.threshold);
      t.AddRow({tap, crop ? "yes" : "no",
                util::Table::Num(
                    static_cast<double>(trained.mc->MarginalMacsPerFrame()) /
                        1e6,
                    2),
                util::Table::Num(m.f1, 3), util::Table::Num(m.event_recall, 3),
                util::Table::Num(m.precision, 3)});
      json.NewRow();
      json.Row("tap", tap);
      json.Row("crop", crop ? 1.0 : 0.0);
      json.Row("marginal_mmacs",
               static_cast<double>(trained.mc->MarginalMacsPerFrame()) / 1e6);
      json.Row("event_f1", m.f1);
      json.Row("event_recall", m.event_recall);
      json.Row("precision", m.precision);
    }
  }
  t.Print(std::cout);
  std::printf("\npaper §3.2/§3.4: cropping reduces MC cost proportionally to "
              "the input-area reduction and helps accuracy; tap-layer choice "
              "is critical (too late loses small details).\n");
  json.Write();
  return 0;
}
