// Shared plumbing for the figure/table reproduction benches.
//
// Every bench runs at a scaled-down default (see docs/ARCHITECTURE.md,
// "Scaled defaults") and prints the actual parameters in its header. Environment
// knobs:
//   FF_BENCH_WIDTH            frame width (default 256)
//   FF_BENCH_TRAIN_FRAMES     training-video frames (default 2400)
//   FF_BENCH_TEST_FRAMES      test-video frames (default 900)
//   FF_BENCH_EPOCHS           training passes for the localized MC
//   FF_BENCH_OBJECT_SCALE     object size multiplier (default 3: preserves
//                             the paper's object-to-feature-cell ratio at
//                             scaled resolutions)
//   FF_BENCH_EVENT_LEN        mean ground-truth event length in frames
//                             (default 22)
//   FF_BENCH_FRAMES           frames per throughput measurement (default 3)
//   FF_BENCH_MAX_CLASSIFIERS  top of the Fig. 5/6 sweep (default 50)
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/microclassifier.hpp"
#include "core/smoothing.hpp"
#include "dnn/feature_extractor.hpp"
#include "metrics/event_metrics.hpp"
#include "nn/kernels.hpp"
#include "train/experiment.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "video/dataset.hpp"
#include "video/source.hpp"

namespace ff::bench {

struct BenchParams {
  std::int64_t width = util::EnvInt("FF_BENCH_WIDTH", 256);
  std::int64_t train_frames = util::EnvInt("FF_BENCH_TRAIN_FRAMES", 2400);
  std::int64_t test_frames = util::EnvInt("FF_BENCH_TEST_FRAMES", 900);
  double epochs = util::EnvDouble("FF_BENCH_EPOCHS", 2.0);
  double object_scale = util::EnvDouble("FF_BENCH_OBJECT_SCALE", 3.0);
  std::int64_t mean_event_len = util::EnvInt("FF_BENCH_EVENT_LEN", 22);
};

// Train/test videos: same camera (shared scene seed), different days
// (different schedule seeds) — paper §4.1.
inline video::DatasetSpec TrainSpec(video::Profile p, const BenchParams& bp) {
  auto spec = p == video::Profile::kJackson
                  ? video::JacksonSpec(bp.width, bp.train_frames, 11)
                  : video::RoadwaySpec(bp.width, bp.train_frames, 21);
  spec.mean_event_len = bp.mean_event_len;
  spec.object_scale = bp.object_scale;
  return spec;
}

inline video::DatasetSpec TestSpec(video::Profile p, const BenchParams& bp) {
  auto spec = p == video::Profile::kJackson
                  ? video::JacksonSpec(bp.width, bp.test_frames, 12)
                  : video::RoadwaySpec(bp.width, bp.test_frames, 22);
  spec.mean_event_len = bp.mean_event_len;
  spec.object_scale = bp.object_scale;
  return spec;
}

// Tap selection (paper §3.4 heuristic, applied to the scaled geometry): the
// first layer whose stride gives a 1-2 cell object footprint. At paper
// resolution that is conv4_2/sep (localized) and conv5_6/sep (full-frame);
// at our scaled default the same rule selects one level earlier.
inline std::string TapForScale(std::int64_t width) {
  return width >= 1024 ? dnn::kMidTap : "conv3_2/sep";
}
inline std::string LateTapForScale(std::int64_t width) {
  return width >= 1024 ? dnn::kLateTap : "conv4_2/sep";
}

// A trained, threshold-calibrated microclassifier.
struct TrainedMc {
  std::unique_ptr<core::Microclassifier> mc;
  float threshold = 0.5f;
  double final_loss = 0.0;
};

// Trains one MC on the training video (one shared feature pass per call —
// callers training several MCs should use StreamDatasetFeatures themselves;
// this helper is for the single-MC case).
inline TrainedMc TrainOneMc(const std::string& arch,
                            const video::SyntheticDataset& train_ds,
                            dnn::FeatureExtractor& fx, core::McConfig cfg,
                            double epochs, double lr = 2e-3) {
  auto mc = core::MakeMicroclassifier(arch, std::move(cfg), fx,
                                      train_ds.spec().height,
                                      train_ds.spec().width);
  fx.RequestTap(mc->config().tap);
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = lr;
  const std::int64_t window = arch == "windowed" ? 5 : 1;
  train::BinaryNetTrainer trainer(mc->net(), tc, window);
  train::StreamDatasetFeatures(
      train_ds, fx, 0, train_ds.n_frames(),
      [&](std::int64_t t, const dnn::FeatureMaps& fm) {
        trainer.AddFrame(mc->CropFeatures(fm), train_ds.Label(t));
      });
  TrainedMc out;
  out.final_loss = trainer.Train();
  const auto scores = trainer.ScoreCachedFrames();
  out.threshold = train::CalibrateThreshold(
      scores, train_ds.labels(), 5, 2);
  out.mc = std::move(mc);
  return out;
}

// Preprocessed batch of the dataset's first `n` frames — the calibration
// input for quantize-configured extractors (int8 activation scales must see
// representative frames, not noise).
inline nn::Tensor CalibBatch(const video::SyntheticDataset& ds,
                             std::int64_t n) {
  const video::Frame f0 = ds.RenderFrame(0);
  nn::Tensor batch(nn::Shape{n, 3, f0.height(), f0.width()});
  for (std::int64_t i = 0; i < n; ++i) {
    const video::Frame f = ds.RenderFrame(i);
    dnn::PreprocessRgbInto(batch, i, f.r(), f.g(), f.b());
  }
  return batch;
}

// Event metrics of thresholded+smoothed scores against dataset truth.
inline metrics::EventMetrics EvalScores(const std::vector<float>& scores,
                                        const video::SyntheticDataset& ds,
                                        float threshold) {
  std::vector<std::uint8_t> raw(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    raw[i] = scores[i] >= threshold ? 1 : 0;
  }
  const auto smoothed = core::SmoothLabels(raw, 5, 2);
  return metrics::ComputeEventMetrics(ds.labels(), ds.events(), smoothed);
}

// Machine-readable bench results: scalar summary fields plus a "rows" array
// of per-sweep-point objects, written as one JSON file so the perf
// trajectory is trackable across PRs (BENCH_fig5.json is the checked-in
// instance; CI uploads fresh ones as artifacts). Construct with the path
// from `--json <path>` (or the FF_BENCH_JSON env var); an empty path
// disables the writer and every call becomes a no-op.
class JsonResult {
 public:
  static std::string PathFromArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        FF_CHECK_MSG(i + 1 < argc, "--json needs a path argument");
        return argv[i + 1];
      }
    }
    return util::EnvString("FF_BENCH_JSON", "");
  }

  JsonResult(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {
    // Every checked-in BENCH_*.json records the ISA its numbers were
    // measured on — a scalar-vs-AVX2 run is not a perf regression.
    Set("isa", nn::kernels::IsaName(nn::kernels::ActiveIsa()));
  }

  bool enabled() const { return !path_.empty(); }

  void Set(const std::string& key, double v) {
    if (enabled()) scalars_.push_back({key, Num(v)});
  }
  void Set(const std::string& key, const std::string& v) {
    if (enabled()) scalars_.push_back({key, Quote(v)});
  }
  void NewRow() {
    if (enabled()) rows_.emplace_back();
  }
  void Row(const std::string& key, double v) {
    if (enabled()) CurrentRow().push_back({key, Num(v)});
  }
  void Row(const std::string& key, const std::string& v) {
    if (enabled()) CurrentRow().push_back({key, Quote(v)});
  }

  // Writes the file and reports the path on stdout; no-op when disabled.
  void Write() const {
    if (!enabled()) return;
    std::ofstream out(path_);
    out << "{\n  \"bench\": " << Quote(bench_);
    for (const auto& f : scalars_) {
      out << ",\n  " << Quote(f.key) << ": " << f.json;
    }
    out << ",\n  \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "    {";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        out << (i == 0 ? "" : ", ") << Quote(rows_[r][i].key) << ": "
            << rows_[r][i].json;
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("\nwrote %s\n", path_.c_str());
  }

 private:
  struct Field {
    std::string key;
    std::string json;  // pre-rendered value
  };

  std::vector<Field>& CurrentRow() {
    FF_CHECK_MSG(!rows_.empty(), "JsonResult::Row before NewRow");
    return rows_.back();
  }

  static std::string Num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  std::string bench_;
  std::string path_;
  std::vector<Field> scalars_;
  std::vector<std::vector<Field>> rows_;
};

// Records the shared sweep parameters every bench should carry in its JSON.
inline void AddParams(JsonResult& json, const BenchParams& bp) {
  json.Set("width", static_cast<double>(bp.width));
  json.Set("test_frames", static_cast<double>(bp.test_frames));
  json.Set("object_scale", bp.object_scale);
}

inline void PrintHeader(const char* what, const BenchParams& bp) {
  std::printf("=== %s ===\n", what);
  std::printf(
      "scaled defaults: width=%lld train_frames=%lld test_frames=%lld "
      "epochs=%.2f object_scale=%.2f (env FF_BENCH_* to change)\n\n",
      static_cast<long long>(bp.width),
      static_cast<long long>(bp.train_frames),
      static_cast<long long>(bp.test_frames), bp.epochs, bp.object_scale);
}

}  // namespace ff::bench
