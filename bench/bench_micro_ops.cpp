// google-benchmark microbenchmarks for the kernels underneath every
// experiment: convolutions (the base DNN's cost), DCT/quantization and
// motion search (the codec), K-voting and event metrics (the filtering
// tail), and synthetic-frame rendering (the workload generator).
#include <benchmark/benchmark.h>

#include "codec/codec.hpp"
#include "codec/dct.hpp"
#include "core/smoothing.hpp"
#include "metrics/event_metrics.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "util/rng.hpp"
#include "video/dataset.hpp"

namespace {

using namespace ff;

void BM_PointwiseConv(benchmark::State& state) {
  const std::int64_t c_in = state.range(0);
  const std::int64_t c_out = state.range(1);
  nn::Conv2D conv("pw", c_in, c_out, 1, 1, nn::Padding::kSameCeil);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c_in, 24, 40});
  util::Pcg32 rng(2);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(conv.Macs(in.shape())) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PointwiseConv)->Args({128, 128})->Args({512, 512})->Args({512, 32});

void BM_DepthwiseConv3x3(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  nn::DepthwiseConv2D conv("dw", c, 3, 1, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c, 24, 40});
  util::Pcg32 rng(3);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_DepthwiseConv3x3)->Arg(128)->Arg(512);

void BM_Conv3x3Stride2(benchmark::State& state) {
  nn::Conv2D conv("c", 3, 32, 3, 2, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, 3, 180, 320});
  util::Pcg32 rng(4);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_Conv3x3Stride2);

void BM_Dct8x8RoundTrip(benchmark::State& state) {
  util::Pcg32 rng(5);
  codec::Block b{};
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-128, 128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::InverseDct(codec::ForwardDct(b)));
  }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void BM_EncodeFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 41));
  codec::EncoderConfig cfg{.width = ds.spec().width,
                           .height = ds.spec().height};
  cfg.target_bitrate_bps = 200000;
  codec::Encoder enc(cfg);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.EncodeFrame(ds.RenderFrame(i % 64)));
    ++i;
  }
}
BENCHMARK(BM_EncodeFrame);

void BM_RenderFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 42));
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.RenderFrame(i % 64));
    ++i;
  }
}
BENCHMARK(BM_RenderFrame);

void BM_KVotingSmoothing(benchmark::State& state) {
  util::Pcg32 rng(6);
  std::vector<std::uint8_t> raw(10000);
  for (auto& v : raw) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SmoothLabels(raw, 5, 2));
  }
}
BENCHMARK(BM_KVotingSmoothing);

void BM_EventMetrics(benchmark::State& state) {
  util::Pcg32 rng(7);
  std::vector<std::uint8_t> truth(10000), pred(10000);
  for (auto& v : truth) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto& v : pred) v = rng.Bernoulli(0.25) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ComputeEventMetrics(truth, pred));
  }
}
BENCHMARK(BM_EventMetrics);

}  // namespace

BENCHMARK_MAIN();
