// google-benchmark microbenchmarks for the kernels underneath every
// experiment: convolutions (the base DNN's cost), DCT/quantization and
// motion search (the codec), K-voting and event metrics (the filtering
// tail), and synthetic-frame rendering (the workload generator).
#include <benchmark/benchmark.h>

#include "codec/codec.hpp"
#include "codec/dct.hpp"
#include "core/smoothing.hpp"
#include "metrics/event_metrics.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "util/rng.hpp"
#include "video/dataset.hpp"

namespace {

using namespace ff;

void BM_PointwiseConv(benchmark::State& state) {
  const std::int64_t c_in = state.range(0);
  const std::int64_t c_out = state.range(1);
  nn::Conv2D conv("pw", c_in, c_out, 1, 1, nn::Padding::kSameCeil);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c_in, 24, 40});
  util::Pcg32 rng(2);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(conv.Macs(in.shape())) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PointwiseConv)->Args({128, 128})->Args({512, 512})->Args({512, 32});

void BM_DepthwiseConv3x3(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  nn::DepthwiseConv2D conv("dw", c, 3, 1, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c, 24, 40});
  util::Pcg32 rng(3);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_DepthwiseConv3x3)->Arg(128)->Arg(512);

void BM_Conv3x3Stride2(benchmark::State& state) {
  nn::Conv2D conv("c", 3, 32, 3, 2, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, 3, 180, 320});
  util::Pcg32 rng(4);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_Conv3x3Stride2);

// --- SIMD kernel library (dispatched vs scalar; arg 0 selects) -------------

const nn::kernels::OpTable& KernelTable(std::int64_t simd) {
  return simd != 0 ? nn::kernels::Active() : nn::kernels::scalar::Table();
}

void BM_KernelAxpy(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = state.range(1);
  util::Pcg32 rng(11);
  std::vector<float> x(static_cast<std::size_t>(n)), y(x.size());
  for (auto& v : x) v = rng.NextFloat();
  for (auto _ : state) {
    ops.axpy(1.01f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelAxpy)->Args({0, 960})->Args({1, 960});

void BM_KernelPwAcc4(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 960, n_ic = 128;
  util::Pcg32 rng(12);
  std::vector<float> xdata(static_cast<std::size_t>(n * n_ic));
  for (auto& v : xdata) v = rng.NextFloat();
  std::vector<const float*> xs(static_cast<std::size_t>(n_ic));
  for (std::int64_t ic = 0; ic < n_ic; ++ic) xs[static_cast<std::size_t>(ic)] = xdata.data() + ic * n;
  std::vector<float> w(static_cast<std::size_t>(4 * n_ic)), y(static_cast<std::size_t>(4 * n));
  for (auto& v : w) v = rng.NextFloat();
  for (auto _ : state) {
    ops.pw_acc4(xs.data(), n_ic, w.data(), n_ic, y.data(), y.data() + n,
                y.data() + 2 * n, y.data() + 3 * n, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(4 * n_ic * n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelPwAcc4)->Arg(0)->Arg(1);

void BM_KernelSad16x16(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  util::Pcg32 rng(13);
  std::vector<std::uint8_t> a(64 * 64), b(64 * 64);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.Uniform(0, 256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.Uniform(0, 256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.sad16x16(a.data(), 64, b.data() + 5, 64));
  }
}
BENCHMARK(BM_KernelSad16x16)->Arg(0)->Arg(1);

void BM_KernelDot(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 4608;
  util::Pcg32 rng(14);
  std::vector<float> a(static_cast<std::size_t>(n)), b(a.size());
  for (auto& v : a) v = rng.NextFloat();
  for (auto& v : b) v = rng.NextFloat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_KernelDot)->Arg(0)->Arg(1);

void BM_Dct8x8RoundTrip(benchmark::State& state) {
  util::Pcg32 rng(5);
  codec::Block b{};
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-128, 128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::InverseDct(codec::ForwardDct(b)));
  }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void BM_EncodeFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 41));
  codec::EncoderConfig cfg{.width = ds.spec().width,
                           .height = ds.spec().height};
  cfg.target_bitrate_bps = 200000;
  codec::Encoder enc(cfg);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.EncodeFrame(ds.RenderFrame(i % 64)));
    ++i;
  }
}
BENCHMARK(BM_EncodeFrame);

void BM_RenderFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 42));
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.RenderFrame(i % 64));
    ++i;
  }
}
BENCHMARK(BM_RenderFrame);

void BM_KVotingSmoothing(benchmark::State& state) {
  util::Pcg32 rng(6);
  std::vector<std::uint8_t> raw(10000);
  for (auto& v : raw) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SmoothLabels(raw, 5, 2));
  }
}
BENCHMARK(BM_KVotingSmoothing);

void BM_EventMetrics(benchmark::State& state) {
  util::Pcg32 rng(7);
  std::vector<std::uint8_t> truth(10000), pred(10000);
  for (auto& v : truth) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto& v : pred) v = rng.Bernoulli(0.25) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ComputeEventMetrics(truth, pred));
  }
}
BENCHMARK(BM_EventMetrics);

}  // namespace

BENCHMARK_MAIN();
