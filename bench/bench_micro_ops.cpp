// google-benchmark microbenchmarks for the kernels underneath every
// experiment: convolutions (the base DNN's cost), DCT/quantization and
// motion search (the codec), K-voting and event metrics (the filtering
// tail), and synthetic-frame rendering (the workload generator).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "codec/codec.hpp"
#include "codec/dct.hpp"
#include "core/smoothing.hpp"
#include "metrics/event_metrics.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/quantize.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"
#include "video/dataset.hpp"

namespace {

using namespace ff;

void BM_PointwiseConv(benchmark::State& state) {
  const std::int64_t c_in = state.range(0);
  const std::int64_t c_out = state.range(1);
  nn::Conv2D conv("pw", c_in, c_out, 1, 1, nn::Padding::kSameCeil);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c_in, 24, 40});
  util::Pcg32 rng(2);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(conv.Macs(in.shape())) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PointwiseConv)->Args({128, 128})->Args({512, 512})->Args({512, 32});

void BM_DepthwiseConv3x3(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  nn::DepthwiseConv2D conv("dw", c, 3, 1, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, c, 24, 40});
  util::Pcg32 rng(3);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_DepthwiseConv3x3)->Arg(128)->Arg(512);

void BM_Conv3x3Stride2(benchmark::State& state) {
  nn::Conv2D conv("c", 3, 32, 3, 2, nn::Padding::kSameFloor);
  nn::HeInitLayer(conv, 1);
  nn::Tensor in(nn::Shape{1, 3, 180, 320});
  util::Pcg32 rng(4);
  in.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(in));
  }
}
BENCHMARK(BM_Conv3x3Stride2);

// --- SIMD kernel library (dispatched vs scalar; arg 0 selects) -------------

const nn::kernels::OpTable& KernelTable(std::int64_t simd) {
  return simd != 0 ? nn::kernels::Active() : nn::kernels::scalar::Table();
}

void BM_KernelAxpy(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = state.range(1);
  util::Pcg32 rng(11);
  std::vector<float> x(static_cast<std::size_t>(n)), y(x.size());
  for (auto& v : x) v = rng.NextFloat();
  for (auto _ : state) {
    ops.axpy(1.01f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelAxpy)->Args({0, 960})->Args({1, 960});

void BM_KernelPwAcc4(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 960, n_ic = 128;
  util::Pcg32 rng(12);
  std::vector<float> xdata(static_cast<std::size_t>(n * n_ic));
  for (auto& v : xdata) v = rng.NextFloat();
  std::vector<const float*> xs(static_cast<std::size_t>(n_ic));
  for (std::int64_t ic = 0; ic < n_ic; ++ic) xs[static_cast<std::size_t>(ic)] = xdata.data() + ic * n;
  std::vector<float> w(static_cast<std::size_t>(4 * n_ic)), y(static_cast<std::size_t>(4 * n));
  for (auto& v : w) v = rng.NextFloat();
  for (auto _ : state) {
    ops.pw_acc4(xs.data(), n_ic, w.data(), n_ic, y.data(), y.data() + n,
                y.data() + 2 * n, y.data() + 3 * n, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(4 * n_ic * n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelPwAcc4)->Arg(0)->Arg(1);

void BM_KernelSad16x16(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  util::Pcg32 rng(13);
  std::vector<std::uint8_t> a(64 * 64), b(64 * 64);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.Uniform(0, 256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.Uniform(0, 256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.sad16x16(a.data(), 64, b.data() + 5, 64));
  }
}
BENCHMARK(BM_KernelSad16x16)->Arg(0)->Arg(1);

void BM_KernelDot(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 4608;
  util::Pcg32 rng(14);
  std::vector<float> a(static_cast<std::size_t>(n)), b(a.size());
  for (auto& v : a) v = rng.NextFloat();
  for (auto& v : b) v = rng.NextFloat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_KernelDot)->Arg(0)->Arg(1);

// --- int8 kernels (GOP/s vs the float counterparts above) ------------------

void BM_KernelQPwAcc2(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 960, n_ic = 128;
  util::Pcg32 rng(21);
  std::vector<std::uint8_t> xdata(static_cast<std::size_t>(n * n_ic));
  for (auto& v : xdata) v = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  std::vector<const std::uint8_t*> xs(static_cast<std::size_t>(n_ic));
  for (std::int64_t ic = 0; ic < n_ic; ++ic) {
    xs[static_cast<std::size_t>(ic)] = xdata.data() + ic * n;
  }
  std::vector<std::int8_t> w(static_cast<std::size_t>(2 * n_ic));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.UniformInt(-127, 127));
  std::vector<std::int32_t> acc0(static_cast<std::size_t>(n));
  std::vector<std::int32_t> acc1(static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::fill(acc0.begin(), acc0.end(), 0);
    std::fill(acc1.begin(), acc1.end(), 0);
    ops.qpw_acc2(xs.data(), n_ic, w.data(), w.data() + n_ic, acc0.data(),
                 acc1.data(), n);
    benchmark::DoNotOptimize(acc0.data());
    benchmark::DoNotOptimize(acc1.data());
  }
  state.counters["GOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(2 * n_ic * n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelQPwAcc2)->Arg(0)->Arg(1);

void BM_KernelQPwAcc2Packed(benchmark::State& state) {
  // Same contraction as BM_KernelQPwAcc2 but through the channel-quad packed
  // layout (pack amortized across all output channels, as RunOp does). The
  // second arg is the plane size: 960 matches the unpacked bench, 144 is the
  // 9x16 conv5 plane at 256px input whose 16-pixel tail used to fall off the
  // SIMD path.
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = state.range(1), n_ic = 128;
  util::Pcg32 rng(21);
  std::vector<std::uint8_t> xdata(static_cast<std::size_t>(n * n_ic));
  for (auto& v : xdata) v = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  std::vector<const std::uint8_t*> xs(static_cast<std::size_t>(n_ic));
  for (std::int64_t ic = 0; ic < n_ic; ++ic) {
    xs[static_cast<std::size_t>(ic)] = xdata.data() + ic * n;
  }
  std::vector<std::uint8_t> packed(static_cast<std::size_t>(n_ic * n));
  ops.qpw_pack(xs.data(), n_ic, packed.data(), n);
  std::vector<std::int8_t> w(static_cast<std::size_t>(2 * n_ic));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.UniformInt(-127, 127));
  std::vector<std::int32_t> acc0(static_cast<std::size_t>(n));
  std::vector<std::int32_t> acc1(static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::fill(acc0.begin(), acc0.end(), 0);
    std::fill(acc1.begin(), acc1.end(), 0);
    ops.qpw_acc2p(packed.data(), n_ic, w.data(), w.data() + n_ic,
                  acc0.data(), acc1.data(), n);
    benchmark::DoNotOptimize(acc0.data());
    benchmark::DoNotOptimize(acc1.data());
  }
  state.counters["GOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(2 * n_ic * n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelQPwAcc2Packed)
    ->Args({0, 960})
    ->Args({1, 960})
    ->Args({0, 144})
    ->Args({1, 144});

void BM_KernelQAxpyRowsS2(benchmark::State& state) {
  // Stride-2 row accumulate (conv1's downsampling taps): even bytes of each
  // padded row scaled into the s32 plane.
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t rows = 72, n = 128, xstride = 2 * n + 2;
  util::Pcg32 rng(24);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(rows * xstride) + 32);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
  for (auto _ : state) {
    ops.qaxpy_rows_s2(-77, x.data(), xstride, acc.data(), n, rows, n);
    benchmark::DoNotOptimize(acc.data());
  }
  state.counters["GOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(rows * n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelQAxpyRowsS2)->Arg(0)->Arg(1);

void BM_KernelQDot(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 4608;
  util::Pcg32 rng(22);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  std::vector<std::int8_t> w(x.size());
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.UniformInt(-127, 127));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.qdot(x.data(), w.data(), n));
  }
  state.counters["GOP/s"] = benchmark::Counter(
      2e-9 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelQDot)->Arg(0)->Arg(1);

void BM_KernelQRequant(benchmark::State& state) {
  const auto& ops = KernelTable(state.range(0));
  const std::int64_t n = 960;
  util::Pcg32 rng(23);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n));
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.UniformInt(-2'000'000, 2'000'000));
  }
  std::vector<std::uint8_t> y(acc.size());
  for (auto _ : state) {
    ops.qrequant(acc.data(), 2.47e-4f, 3.5f, y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Gelem/s"] = benchmark::Counter(
      1e-9 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_KernelQRequant)->Arg(0)->Arg(1);

void BM_QuantizedPointwiseConv(benchmark::State& state) {
  // End-to-end int8 pointwise op (quantize + conv + requant + dequant
  // boundaries amortized over the program), against BM_PointwiseConv.
  const std::int64_t c_in = state.range(0);
  const std::int64_t c_out = state.range(1);
  nn::Sequential net("qpw");
  net.Add(std::make_unique<nn::Conv2D>("pw", c_in, c_out, 1, 1,
                                       nn::Padding::kSameCeil));
  net.Add(nn::MakeRelu("pw/relu"));
  nn::HeInit(net, 1);
  nn::Tensor in(nn::Shape{1, c_in, 24, 40});
  util::Pcg32 rng(2);
  in.FillNormal(rng, 1.0f);
  const auto prog = nn::Quantizer::Quantize(net, in);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.Forward(in));
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(net.layer(0).Macs(in.shape())) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_QuantizedPointwiseConv)
    ->Args({128, 128})
    ->Args({512, 512})
    ->Args({512, 32});

void BM_Dct8x8RoundTrip(benchmark::State& state) {
  util::Pcg32 rng(5);
  codec::Block b{};
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-128, 128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::InverseDct(codec::ForwardDct(b)));
  }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void BM_EncodeFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 41));
  codec::EncoderConfig cfg{.width = ds.spec().width,
                           .height = ds.spec().height};
  cfg.target_bitrate_bps = 200000;
  codec::Encoder enc(cfg);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.EncodeFrame(ds.RenderFrame(i % 64)));
    ++i;
  }
}
BENCHMARK(BM_EncodeFrame);

void BM_RenderFrame(benchmark::State& state) {
  const video::SyntheticDataset ds(video::JacksonSpec(320, 64, 42));
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.RenderFrame(i % 64));
    ++i;
  }
}
BENCHMARK(BM_RenderFrame);

void BM_KVotingSmoothing(benchmark::State& state) {
  util::Pcg32 rng(6);
  std::vector<std::uint8_t> raw(10000);
  for (auto& v : raw) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SmoothLabels(raw, 5, 2));
  }
}
BENCHMARK(BM_KVotingSmoothing);

void BM_EventMetrics(benchmark::State& state) {
  util::Pcg32 rng(7);
  std::vector<std::uint8_t> truth(10000), pred(10000);
  for (auto& v : truth) v = rng.Bernoulli(0.2) ? 1 : 0;
  for (auto& v : pred) v = rng.Bernoulli(0.25) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ComputeEventMetrics(truth, pred));
  }
}
BENCHMARK(BM_EventMetrics);

}  // namespace

BENCHMARK_MAIN();
