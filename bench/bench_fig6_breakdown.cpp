// Fig. 6 reproduction: per-frame execution-time breakdown of FilterForward's
// two phases — the shared base DNN vs. the microclassifiers — as the number
// of concurrent MCs grows from 1 to 50, for each MC architecture.
//
// Paper shapes: the base DNN dominates at low classifier counts; total time
// grows only modestly with dozens of MCs; the base DNN's CPU time equals
// that of roughly 15-40 MCs (printed as the "break-even" column).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/edge_node.hpp"

using namespace ff;
using bench::BenchParams;

int main(int argc, char** argv) {
  BenchParams bp;
  bench::PrintHeader("Fig. 6: execution time breakdown (base DNN vs MCs)",
                     bp);
  const std::int64_t max_classifiers =
      util::EnvInt("FF_BENCH_MAX_CLASSIFIERS", 50);
  const std::int64_t n_frames = util::EnvInt("FF_BENCH_FRAMES", 3) + 1;
  bench::JsonResult json("fig6_breakdown",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);

  auto spec = video::JacksonSpec(bp.width, n_frames + 1, 32);
  spec.object_scale = bp.object_scale;
  const video::SyntheticDataset ds(spec);
  std::vector<video::Frame> frames;
  for (std::int64_t i = 0; i < n_frames; ++i) frames.push_back(ds.RenderFrame(i));

  for (const char* arch : {"full_frame", "localized", "windowed"}) {
    std::printf("--- Fig. 6 (%s) ---\n", arch);
    util::Table t({"classifiers", "base DNN (s/frame)", "MCs (s/frame)",
                   "total (s/frame)", "MC share", "base = N MCs"});
    for (const std::int64_t k : {1, 2, 4, 8, 16, 32, 50}) {
      if (k > max_classifiers) break;
      dnn::FeatureExtractor fx({.include_classifier = false});
      // Faithful to the paper: the extractor runs the complete base DNN
      // (see the matching note in bench_fig5_throughput.cpp).
      fx.RequestTap("conv6/sep");
      core::EdgeNodeConfig cfg;
      cfg.frame_width = ds.spec().width;
      cfg.frame_height = ds.spec().height;
      cfg.fps = ds.spec().fps;
      cfg.enable_upload = false;
      // Serial MC phase: this figure attributes per-MC *CPU* cost (the
      // "base = N MCs" column), which pooled wall time would hide.
      cfg.parallel_mcs = false;
      core::EdgeNode node(fx, cfg);
      const std::string tap = std::string(arch) == "full_frame"
                                  ? bench::LateTapForScale(ds.spec().width)
                                  : bench::TapForScale(ds.spec().width);
      for (std::int64_t i = 0; i < k; ++i) {
        node.Attach({.mc = core::MakeMicroclassifier(
                         arch,
                         {.name = arch + std::to_string(i), .tap = tap,
                          .seed = static_cast<std::uint64_t>(500 + i)},
                         fx, ds.spec().height, ds.spec().width)});
      }
      for (const auto& f : frames) node.Submit(f);
      node.Drain();
      const auto n = static_cast<double>(frames.size());
      const double base_s = node.base_dnn_seconds() / n;
      const double mc_s = node.mc_seconds() / n;
      const double per_mc = mc_s / static_cast<double>(k);
      t.AddRow({std::to_string(k), util::Table::Num(base_s, 4),
                util::Table::Num(mc_s, 4),
                util::Table::Num(base_s + mc_s, 4),
                util::Table::Num(100.0 * mc_s / (base_s + mc_s), 1) + "%",
                util::Table::Num(per_mc > 0 ? base_s / per_mc : 0, 1)});
      json.NewRow();
      json.Row("arch", arch);
      json.Row("classifiers", static_cast<double>(k));
      json.Row("base_dnn_s_per_frame", base_s);
      json.Row("mc_s_per_frame", mc_s);
    }
    t.Print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: base DNN dominates at low counts; its CPU time is "
              "equivalent to ~15-40 MCs depending on the architecture.\n");
  json.Write();
  return 0;
}
