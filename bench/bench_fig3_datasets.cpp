// Fig. 3 reproduction: dataset details (3b) and task crop regions (3c).
//
// The actor schedule and ground-truth labels are generated without
// rendering any pixels, so this bench reproduces the table at the paper's
// full frame counts (600,000 Jackson frames, 324,009 Roadway frames) in a
// few seconds. The paper's rows are printed beside ours.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "video/dataset.hpp"

using namespace ff;

int main(int argc, char** argv) {
  std::printf("=== Fig. 3: real-world evaluation videos and tasks ===\n\n");
  bench::JsonResult json("fig3_datasets",
                         bench::JsonResult::PathFromArgs(argc, argv));

  // Paper-scale frame counts; the schedule/labels are cheap to build. Mean
  // event lengths are set to the paper's implied values (95,238/506 = 188
  // frames for Jackson, 71,296/326 = 218 for Roadway).
  auto jx = video::JacksonSpec(1920, 600000, 11);
  jx.mean_event_len = 188;
  auto rd = video::RoadwaySpec(2048, 324009, 21);
  rd.mean_event_len = 218;
  video::SyntheticDataset jackson(jx);
  video::SyntheticDataset roadway(rd);

  std::printf("--- Fig. 3b: dataset details (paper values in parentheses) ---\n");
  util::Table t({"Attribute", "Jackson", "Roadway"});
  t.AddRow({"Resolution",
            std::to_string(jackson.spec().width) + " x " +
                std::to_string(jackson.spec().height) + " (1920 x 1080)",
            std::to_string(roadway.spec().width) + " x " +
                std::to_string(roadway.spec().height) + " (2048 x 850)"});
  t.AddRow({"Frame rate", std::to_string(jackson.spec().fps) + " fps (15)",
            std::to_string(roadway.spec().fps) + " fps (15)"});
  const auto js = jackson.Stats();
  const auto rs = roadway.Stats();
  t.AddRow({"Frames", std::to_string(js.frames) + " (600,000)",
            std::to_string(rs.frames) + " (324,009)"});
  t.AddRow({"Task", jackson.spec().task + " (Pedestrian)",
            roadway.spec().task + " (People with red)"});
  t.AddRow({"Event frames", std::to_string(js.event_frames) + " (95,238)",
            std::to_string(rs.event_frames) + " (71,296)"});
  t.AddRow({"Unique events", std::to_string(js.unique_events) + " (506)",
            std::to_string(rs.unique_events) + " (326)"});
  t.Print(std::cout);
  std::printf(
      "\nevent-frame fraction: jackson %.3f (paper 0.159), roadway %.3f "
      "(paper 0.220)\n\n",
      static_cast<double>(js.event_frames) / static_cast<double>(js.frames),
      static_cast<double>(rs.event_frames) / static_cast<double>(rs.frames));

  std::printf("--- Fig. 3c: task crop regions, pixels (paper values) ---\n");
  util::Table c({"Task", "Upper left", "Lower right", "paper"});
  const auto& jc = jackson.spec().crop;
  const auto& rc = roadway.spec().crop;
  c.AddRow({"Pedestrian",
            "(" + std::to_string(jc.x0) + ", " + std::to_string(jc.y0) + ")",
            "(" + std::to_string(jc.x1 - 1) + ", " + std::to_string(jc.y1 - 1) +
                ")",
            "(0, 539) - (1919, 1079)"});
  c.AddRow({"People with red",
            "(" + std::to_string(rc.x0) + ", " + std::to_string(rc.y0) + ")",
            "(" + std::to_string(rc.x1 - 1) + ", " + std::to_string(rc.y1 - 1) +
                ")",
            "(0, 315) - (2047, 819)"});
  c.Print(std::cout);
  std::printf(
      "\nNote: crops apply to base-DNN feature maps, not raw pixels "
      "(paper §3.2); the People-with-red crop covers %.0f%% of the frame "
      "(paper: 59%%).\n",
      100.0 * static_cast<double>(rc.height() * rc.width()) /
          static_cast<double>(roadway.spec().width * roadway.spec().height));

  for (const auto* ds : {&jackson, &roadway}) {
    const auto s = ds->Stats();
    json.NewRow();
    json.Row("dataset", ds->spec().name);
    json.Row("task", ds->spec().task);
    json.Row("width", static_cast<double>(ds->spec().width));
    json.Row("height", static_cast<double>(ds->spec().height));
    json.Row("fps", static_cast<double>(ds->spec().fps));
    json.Row("frames", static_cast<double>(s.frames));
    json.Row("event_frames", static_cast<double>(s.event_frames));
    json.Row("unique_events", static_cast<double>(s.unique_events));
    json.Row("event_frame_fraction", static_cast<double>(s.event_frames) /
                                         static_cast<double>(s.frames));
  }
  json.Write();
  return 0;
}
