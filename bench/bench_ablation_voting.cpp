// Ablation of the K-voting smoothing parameters (paper §3.5: N = 5, K = 2
// "provides fairly aggressive false negative mitigation at the expense of
// potential false positives").
//
// One localized MC is trained once; its raw test scores are then smoothed
// with each (N, K) and scored. Also sweeps the threshold jointly to show
// the tradeoff is robust.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace ff;
using bench::BenchParams;

int main(int argc, char** argv) {
  BenchParams bp;
  bp.train_frames = util::EnvInt("FF_BENCH_TRAIN_FRAMES", 1600);
  bp.test_frames = util::EnvInt("FF_BENCH_TEST_FRAMES", 700);
  bench::PrintHeader("Ablation: K-voting smoothing (N, K)", bp);
  bench::JsonResult json("ablation_voting",
                         bench::JsonResult::PathFromArgs(argc, argv));
  bench::AddParams(json, bp);

  const video::SyntheticDataset train_ds(
      bench::TrainSpec(video::Profile::kRoadway, bp));
  const video::SyntheticDataset test_ds(
      bench::TestSpec(video::Profile::kRoadway, bp));
  const std::string tap = bench::TapForScale(bp.width);

  core::McConfig cfg{.name = "loc", .tap = tap};
  cfg.pixel_crop = train_ds.spec().crop;
  dnn::FeatureExtractor train_fx({.include_classifier = false});
  std::printf("training localized MC...\n");
  auto trained =
      bench::TrainOneMc("localized", train_ds, train_fx, cfg, bp.epochs);

  dnn::FeatureExtractor fx({.include_classifier = false});
  fx.RequestTap(tap);
  train::McScorer scorer(*trained.mc);
  train::StreamDatasetFeatures(
      test_ds, fx, 0, test_ds.n_frames(),
      [&](std::int64_t, const dnn::FeatureMaps& fm) { scorer.Observe(fm); });
  const auto scores = scorer.Finish();

  std::vector<std::uint8_t> raw(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    raw[i] = scores[i] >= trained.threshold ? 1 : 0;
  }

  util::Table t({"N", "K", "event F1", "recall", "precision",
                 "detected events"});
  struct NK {
    std::int64_t n, k;
  };
  for (const NK nk : {NK{1, 1}, NK{3, 1}, NK{3, 2}, NK{5, 1}, NK{5, 2},
                      NK{5, 3}, NK{5, 4}, NK{7, 2}, NK{7, 4}, NK{9, 2}}) {
    const auto smoothed = core::SmoothLabels(raw, nk.n, nk.k);
    const auto m = metrics::ComputeEventMetrics(test_ds.labels(),
                                                test_ds.events(), smoothed);
    const std::string tag =
        nk.n == 5 && nk.k == 2 ? " <- paper default" : "";
    t.AddRow({std::to_string(nk.n) + tag, std::to_string(nk.k),
              util::Table::Num(m.f1, 3), util::Table::Num(m.event_recall, 3),
              util::Table::Num(m.precision, 3),
              std::to_string(m.detected_events) + "/" +
                  std::to_string(m.truth_events)});
    json.NewRow();
    json.Row("n", static_cast<double>(nk.n));
    json.Row("k", static_cast<double>(nk.k));
    json.Row("event_f1", m.f1);
    json.Row("event_recall", m.event_recall);
    json.Row("precision", m.precision);
    json.Row("detected_events", static_cast<double>(m.detected_events));
    json.Row("truth_events", static_cast<double>(m.truth_events));
  }
  t.Print(std::cout);
  std::printf("\npaper §3.5: smaller K favors recall (fewer missed events), "
              "larger K favors precision; (5, 2) biases toward not missing "
              "events.\n");
  json.Write();
  return 0;
}
